package spam

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"spampsm/internal/faults"
	"spampsm/internal/ops5"
	"spampsm/internal/scene"
	"spampsm/internal/stats"
	"spampsm/internal/tlp"
)

// LispFactor converts the optimized C/ParaOPS5 baseline's simulated
// time to the original Lisp implementation's time scale. The paper
// reports the port bought "approximately a 10-20 fold speed-up"; the
// Lisp-era Tables 1-3 are reproduced by applying this factor.
const LispFactor = 15.0

// Dataset bundles a scene with its knowledge base and compiled phase
// programs.
type Dataset struct {
	Name  string
	KB    *KB
	Scene *scene.Scene
	Store *RegionStore
	Progs *Programs
}

// NewDataset generates an airport dataset.
func NewDataset(p scene.Params) (*Dataset, error) {
	s := scene.Generate(p)
	return datasetFrom(s, AirportKB())
}

// NewSuburbanDataset generates a suburban dataset.
func NewSuburbanDataset(p scene.SuburbanParams) (*Dataset, error) {
	s := scene.GenerateSuburban(p)
	return datasetFrom(s, SuburbanKB())
}

func datasetFrom(s *scene.Scene, kb *KB) (*Dataset, error) {
	progs, err := BuildPrograms(kb)
	if err != nil {
		return nil, err
	}
	return NewDatasetWith(s, kb, progs), nil
}

// NewDatasetWith builds a dataset over an existing scene, knowledge
// base and already-compiled phase programs. Sharing one Programs
// across many datasets shares the programs' compiled Rete templates
// and per-variant caches: a long-running server pays rule compilation
// once per knowledge base, not once per scene or per request.
func NewDatasetWith(s *scene.Scene, kb *KB, progs *Programs) *Dataset {
	return &Dataset{
		Name:  s.Name,
		KB:    kb,
		Scene: s,
		Store: NewRegionStore(s),
		Progs: progs,
	}
}

// PhaseRun is the statistics of one interpretation phase.
type PhaseRun struct {
	Phase      string
	Tasks      int
	Firings    int
	RHSActions int
	Instr      float64 // total simulated instructions
	MatchInstr float64
	Hypotheses int
	Results    []*tlp.Result
	// Report is the phase's fault-handling accounting: attempts,
	// retries, quarantines. Clean phases have a clean report.
	Report *tlp.RunReport
	// Modeled memory (ops5.MemStats units): the largest single task's
	// peak footprint and the phase's total seed working memory.
	PeakTaskBytes float64
	SeedBytes     float64
}

// MatchFraction returns the phase's match fraction of total time.
func (p PhaseRun) MatchFraction() float64 {
	if p.Instr == 0 {
		return 0
	}
	return p.MatchInstr / p.Instr
}

// Completeness records how much of the decomposition's work survived
// into an interpretation. A clean run is Complete with zero failures;
// a degraded run (tasks exhausted their retries under
// InterpretOptions.Degraded) is still a valid interpretation — every
// hypothesis in it was produced by a successful task — but an
// explicitly partial one, assembled from the surviving tasks only.
type Completeness struct {
	Complete  bool `json:"complete"`
	Tasks     int  `json:"tasks"`     // tasks attempted across all phases
	Failed    int  `json:"failed"`    // quarantined / exhausted retries
	Cancelled int  `json:"cancelled"` // abandoned to context cancellation
	// FailedTasks lists the failed (non-cancelled) task IDs in queue
	// order, so a degraded result names exactly what is missing.
	FailedTasks []string `json:"failedTasks,omitempty"`
}

// Interpretation is the result of a full four-phase run.
type Interpretation struct {
	Dataset     *Dataset
	Phases      []PhaseRun // RTF, LCC, FA, MODEL
	Fragments   []*Fragment
	Pairs       []ConsistentPair
	Outcomes    []LCCOutcome
	FAs         []FunctionalArea
	Predictions []Prediction
	Model       Model
	ModelFound  bool
	// Completeness reports whether every task of every phase
	// contributed (see InterpretOptions.Degraded).
	Completeness Completeness
	// MemSched is the run's memory-gate accounting — budget,
	// reservation high-water mark, throttle waits — accumulated over
	// all phases. Zero when the run was unbounded or a serving Runner
	// executed the phases (the gate then belongs to the shared pool).
	MemSched tlp.MemSchedStats
}

// Phase returns the named phase run (RTF/LCC/FA/MODEL), or nil.
func (in *Interpretation) Phase(name string) *PhaseRun {
	for i := range in.Phases {
		if in.Phases[i].Phase == name {
			return &in.Phases[i]
		}
	}
	return nil
}

// TotalFirings sums firings over all phases.
func (in *Interpretation) TotalFirings() int {
	n := 0
	for _, p := range in.Phases {
		n += p.Firings
	}
	return n
}

// TotalInstr sums simulated instructions over all phases.
func (in *Interpretation) TotalInstr() float64 {
	var t float64
	for _, p := range in.Phases {
		t += p.Instr
	}
	return t
}

// Recovery sums the phases' fault-handling accounting.
func (in *Interpretation) Recovery() stats.Recovery {
	var rec stats.Recovery
	for _, p := range in.Phases {
		if p.Report != nil {
			rec.Add(p.Report.Recovery())
		}
	}
	return rec
}

// Runner executes one phase's task queue. *tlp.Pool-backed private
// runners are the default; a serving layer passes a runner that
// submits to a process-wide tlp.SharedPool so every concurrent
// request's tasks multiplex onto one worker set.
type Runner interface {
	RunTasks(ctx context.Context, tasks []*tlp.Task) ([]*tlp.Result, error)
}

// poolRunner is the private-pool Runner built when InterpretOptions
// carries no Runner: one pool per interpretation, optional parallel
// engine prebuild before each phase.
type poolRunner struct {
	pool     *tlp.Pool
	prebuild bool
	builders int
}

func (pr *poolRunner) RunTasks(ctx context.Context, tasks []*tlp.Task) ([]*tlp.Result, error) {
	if pr.prebuild {
		pr.pool.Prebuild(tasks, pr.builders)
	}
	return pr.pool.RunContext(ctx, tasks)
}

// InterpretOptions configure a full run.
type InterpretOptions struct {
	Workers  int   // task processes for the real pool (default 1)
	Level    Level // LCC decomposition level (default Level3)
	RTFBatch int   // regions per RTF task (default 3)
	// ReEntry enables the FA→LCC re-entry of the paper: functional-area
	// predictions hypothesize fragments on unclassified regions, which
	// are then re-checked by the LCC rules.
	ReEntry bool
	Capture bool // per-activation capture for match-parallel simulation
	// Prebuild constructs each phase's task engines in parallel (on
	// Workers builders) before the pool runs them, overlapping engine
	// construction instead of paying it serially inside each task's
	// first attempt. Ignored when Runner is set.
	Prebuild bool

	// Runner, when non-nil, executes every phase's task queue instead
	// of a private pool — the serving path, where all requests share
	// one tlp.SharedPool. Workers/Prebuild and the fault-tolerance
	// knobs below then configure the runner's own submission, not a
	// pool built here.
	Runner Runner

	// Degraded switches the result assembler to partial-failure
	// tolerance: a phase with quarantined tasks no longer aborts the
	// interpretation; the phase's outputs are assembled from the
	// surviving tasks and the loss is recorded in
	// Interpretation.Completeness. Cancellation still aborts.
	Degraded bool

	// Fault tolerance (see docs/ROBUSTNESS.md). Zero values mean no
	// injection, no timeout and no retries — the pre-fault behavior.
	Faults       *faults.Plan  // deterministic fault injection; nil = none
	MaxRetries   int           // failed-task re-executions before quarantine
	TaskTimeout  time.Duration // per-attempt wall-clock deadline; 0 = none
	RetryBackoff time.Duration // delay before the first retry (doubles after)
	FiringBudget int           // per-task firing deadline; 0 = none

	// Memory-aware scheduling (see docs/PERFORMANCE.md). Sched orders
	// every phase's task queue — fifo, largest or postorder — and
	// MemBudget bounds the aggregate modeled footprint in flight
	// (simulated bytes; 0 = unbounded). Per-task results are
	// byte-identical under every policy and budget; only order and
	// timing change. With a Runner, Sched still orders each
	// submission's queue, but the memory budget belongs to the shared
	// pool behind the runner and MemBudget here is ignored.
	Sched     tlp.QueuePolicy
	MemBudget float64
}

func phaseStats(name string, results []*tlp.Result, hypotheses int) PhaseRun {
	p := PhaseRun{Phase: name, Tasks: len(results), Hypotheses: hypotheses, Results: results,
		Report: tlp.Report(results)}
	for _, r := range results {
		if r == nil || r.Err != nil {
			continue
		}
		p.Firings += r.Stats.Firings
		p.RHSActions += r.Stats.RHSActions
		p.Instr += r.Stats.TotalInstr()
		p.MatchInstr += r.Stats.MatchInstr + r.Stats.InitInstr
		if r.Log != nil {
			if r.Log.Mem.PeakBytes > p.PeakTaskBytes {
				p.PeakTaskBytes = r.Log.Mem.PeakBytes
			}
			p.SeedBytes += r.Log.Mem.SeedBytes
		}
	}
	return p
}

// Interpret runs the full four-phase SPAM interpretation of the
// dataset: RTF → LCC → FA (with optional LCC re-entry) → MODEL.
func (d *Dataset) Interpret(opt InterpretOptions) (*Interpretation, error) {
	return d.InterpretContext(context.Background(), opt)
}

// InterpretContext is Interpret with request-scoped control: the
// context cancels in-flight tasks cooperatively (a cancelled
// interpretation aborts between — and inside — phases), and the
// options' Runner/Degraded fields select the serving behaviors. With a
// background context, no Runner and Degraded off, it is byte-for-byte
// the classic Interpret.
func (d *Dataset) InterpretContext(ctx context.Context, opt InterpretOptions) (*Interpretation, error) {
	if opt.Workers < 1 {
		opt.Workers = 1
	}
	if opt.Level == 0 {
		opt.Level = Level3
	}
	if opt.RTFBatch < 1 {
		opt.RTFBatch = 3
	}
	runner := opt.Runner
	if runner == nil {
		// The builder count follows the machine, not opt.Workers: engine
		// construction happens outside the simulated clock, so even the
		// paper's one-task-process baseline may overlap it across every
		// available CPU.
		builders := opt.Workers
		if g := runtime.GOMAXPROCS(0); g > builders {
			builders = g
		}
		runner = &poolRunner{
			pool: &tlp.Pool{
				Workers:      opt.Workers,
				Policy:       opt.Sched,
				MemBudget:    opt.MemBudget,
				Faults:       opt.Faults,
				MaxRetries:   opt.MaxRetries,
				TaskTimeout:  opt.TaskTimeout,
				RetryBackoff: opt.RetryBackoff,
				FiringBudget: opt.FiringBudget,
			},
			prebuild: opt.Prebuild,
			builders: builders,
		}
	}
	in := &Interpretation{Dataset: d}
	if pr, ok := runner.(*poolRunner); ok {
		defer func() { in.MemSched = pr.pool.MemSched() }()
	}
	runPhase := func(tasks []*tlp.Task) ([]*tlp.Result, error) {
		// A degraded upstream phase may leave a later phase with no
		// tasks at all; that is an empty phase, not an error.
		if len(tasks) == 0 {
			return nil, nil
		}
		return runner.RunTasks(ctx, tasks)
	}
	endPhase := func(name string, results []*tlp.Result) error {
		return settlePhase(ctx, in, opt.Degraded, name, results)
	}

	// Phase 1: RTF.
	rtfTasks := BuildRTFTasks(d.KB, d.Store, d.Progs.RTF, opt.RTFBatch, opt.Capture)
	rtfResults, err := runPhase(rtfTasks)
	if err != nil {
		return in, fmt.Errorf("spam: RTF: %w", err)
	}
	if err := endPhase("RTF", rtfResults); err != nil {
		in.Phases = append(in.Phases, phaseStats("RTF", rtfResults, 0))
		return in, err
	}
	in.Fragments = ExtractFragments(rtfResults)
	releaseEngines(rtfResults)
	in.Phases = append(in.Phases, phaseStats("RTF", rtfResults, len(in.Fragments)))

	// Phase 2: LCC.
	lccTasks := BuildLCCTasks(d.KB, d.Store, d.Progs.LCC, in.Fragments, opt.Level, opt.Capture)
	lccResults, err := runPhase(lccTasks)
	if err != nil {
		return in, fmt.Errorf("spam: LCC: %w", err)
	}
	if err := endPhase("LCC", lccResults); err != nil {
		in.Phases = append(in.Phases, phaseStats("LCC", lccResults, 0))
		return in, err
	}
	in.Pairs, in.Outcomes = ExtractLCC(lccResults)
	releaseEngines(lccResults)

	// Phase 3: FA.
	faTasks := BuildFATasks(d.KB, d.Store, d.Progs.FA, in.Fragments, in.Pairs, in.Outcomes, opt.Capture)
	var faResults []*tlp.Result
	if len(faTasks) > 0 {
		faResults, err = runPhase(faTasks)
		if err != nil {
			return in, fmt.Errorf("spam: FA: %w", err)
		}
		if err := endPhase("FA", faResults); err != nil {
			in.Phases = append(in.Phases, phaseStats("FA", faResults, 0))
			return in, err
		}
	}
	in.FAs, in.Predictions = ExtractFA(faResults)
	releaseEngines(faResults)

	// FA→LCC re-entry: predictions hypothesize fragments on regions
	// that RTF left unclassified; LCC re-checks them. Their cost is
	// attributed to the LCC phase, where the paper accounts it.
	if opt.ReEntry && len(in.Predictions) > 0 {
		extra := d.reEntryFragments(in)
		if len(extra) > 0 {
			// Only the re-entry objects are re-checked, against the full
			// fragment pool.
			pool2 := append(append([]*Fragment(nil), in.Fragments...), extra...)
			reTasks := BuildLCCTasksFor(d.KB, d.Store, d.Progs.LCC, extra, pool2, opt.Level, opt.Capture)
			// Re-entry tasks continue the LCC phase over fragments the
			// main pass already shipped: mark them so the cluster
			// runtime spawns them on the chunk-resident worker.
			for _, t := range reTasks {
				t.Continues = true
			}
			if len(reTasks) > 0 {
				reResults, err := runPhase(reTasks)
				if err != nil {
					return in, fmt.Errorf("spam: LCC re-entry: %w", err)
				}
				if err := endPhase("LCC re-entry", reResults); err != nil {
					in.Phases = append(in.Phases, phaseStats("LCC", reResults, 0))
					return in, err
				}
				rePairs, reOuts := ExtractLCC(reResults)
				releaseEngines(reResults)
				in.Pairs = append(in.Pairs, rePairs...)
				in.Outcomes = append(in.Outcomes, reOuts...)
				in.Fragments = append(in.Fragments, extra...)
				lccResults = append(lccResults, reResults...)
			}
		}
	}
	in.Phases = append(in.Phases, phaseStats("LCC", lccResults, countConsistent(in.Outcomes)))
	in.Phases = append(in.Phases, phaseStats("FA", faResults, countClosed(in.FAs)))

	// Phase 4: MODEL.
	modelTask := BuildModelTask(d.KB, d.Store, d.Progs.Model, in.Fragments, in.FAs, opt.Capture)
	modelResults, err := runPhase([]*tlp.Task{modelTask})
	if err != nil {
		return in, fmt.Errorf("spam: MODEL: %w", err)
	}
	if err := endPhase("MODEL", modelResults); err != nil {
		in.Phases = append(in.Phases, phaseStats("MODEL", modelResults, 0))
		return in, err
	}
	// A degraded run whose single MODEL task failed still returns: the
	// extractor sees no model WMEs and ModelFound stays false.
	in.Model, in.ModelFound = ExtractModel(modelResults)
	releaseEngines(modelResults)
	nModels := 0
	if in.ModelFound {
		nModels = 1
	}
	in.Phases = append(in.Phases, phaseStats("MODEL", modelResults, nModels))
	in.Completeness.Complete = in.Completeness.Failed == 0 && in.Completeness.Cancelled == 0
	return in, nil
}

// settlePhase settles one phase's results into the interpretation's
// completeness accounting and decides whether the run continues:
// cancellation always aborts; quarantined tasks abort unless the run
// is degraded, in which case the phase's surviving outputs stand and
// the loss is recorded. Shared between InterpretContext and Session.
func settlePhase(ctx context.Context, in *Interpretation, degraded bool, name string, results []*tlp.Result) error {
	for _, r := range results {
		if r == nil {
			continue
		}
		in.Completeness.Tasks++
		if r.Err == nil {
			continue
		}
		if r.Cancelled {
			in.Completeness.Cancelled++
		} else {
			in.Completeness.Failed++
			in.Completeness.FailedTasks = append(in.Completeness.FailedTasks, r.TaskID)
		}
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("spam: %s: interpretation cancelled: %w", name, err)
	}
	if degraded {
		return nil
	}
	return phaseError(name, results)
}

// phaseError aggregates every failed (quarantined) task of a phase
// into one error, in queue order. A phase with retried-but-recovered
// tasks is not an error — recovery is the point.
func phaseError(name string, results []*tlp.Result) error {
	errs := tlp.Errors(results)
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("spam: %s: %d of %d tasks failed: %w",
		name, len(errs), len(results), errors.Join(errs...))
}

// reEntryFragments hypothesizes fragments for FA predictions over
// regions that have no interpretation yet.
func (d *Dataset) reEntryFragments(in *Interpretation) []*Fragment {
	classified := map[int]bool{}
	maxID := 0
	for _, f := range in.Fragments {
		classified[f.RegionID] = true
		if f.ID > maxID {
			maxID = f.ID
		}
	}
	seedRegion := map[int]int{} // fa seed fragment -> region
	for _, f := range in.Fragments {
		seedRegion[f.ID] = f.RegionID
	}
	var out []*Fragment
	seen := map[int]bool{}
	for _, p := range in.Predictions {
		sr := d.Store.Get(seedRegion[p.FA])
		if sr == nil {
			continue
		}
		// Cached bboxes: same booleans as Poly.BBox() per call.
		bb := d.Store.Derived(sr.ID).BBox.Expand(1000)
		for _, r := range d.Scene.Regions {
			if classified[r.ID] || seen[r.ID] {
				continue
			}
			if bb.Intersects(d.Store.Derived(r.ID).BBox) {
				seen[r.ID] = true
				maxID++
				out = append(out, &Fragment{
					ID: maxID, RegionID: r.ID, Type: p.Kind, Conf: 30,
				})
			}
		}
	}
	return out
}

// releaseEngines frees the engines of completed results once their
// outputs have been extracted; the phase statistics only need the
// stats and cost logs.
func releaseEngines(results []*tlp.Result) {
	for _, r := range results {
		if r != nil {
			r.Engine = nil
		}
	}
}

func countConsistent(outs []LCCOutcome) int {
	n := 0
	for _, o := range outs {
		if o.Status == "consistent" {
			n++
		}
	}
	return n
}

func countClosed(fas []FunctionalArea) int {
	n := 0
	for _, f := range fas {
		if f.Status == "closed" {
			n++
		}
	}
	return n
}

// TaskLogs converts completed results to cost logs for the machine
// simulator, in queue order.
func TaskLogs(results []*tlp.Result) []*ops5.CostLog {
	var logs []*ops5.CostLog
	for _, r := range results {
		if r != nil && r.Err == nil && r.Log != nil {
			logs = append(logs, r.Log)
		}
	}
	return logs
}
