// Incremental store maintenance: folding a scene delta into a live
// RegionStore without rebuilding it, and a session-persistent fragment
// grid whose cells are patched per update instead of reconstructed.
//
// Both structures invalidate by identity, not by flush. The predicate
// memo is epoch-stamped (see externals.go): ApplyDelta bumps each
// changed region's epoch, instantly orphaning every memoised boolean
// that read the old geometry, at O(1) per region. The live grid removes
// and reinserts exactly the cells the changed fragments occupy,
// retaining everything else in place — its counters let the tests prove
// the work stays proportional to the churn.
package spam

import (
	"fmt"
	"sort"

	"spampsm/internal/geom"
	"spampsm/internal/scene"
)

// ApplyDelta folds a scene delta into the store in place: the
// underlying scene mutates (Removed regions leave, Moved regions are
// replaced, Added regions append), derived geometry is recomputed for
// the changed regions only, each changed region's predicate-memo epoch
// is bumped (orphaning its memoised booleans without a scan), and the
// fragment-seed cache drops only the entries naming a changed region.
//
// The store must be quiescent: no task may be evaluating externals
// against it while the delta applies. Interpretation sessions guarantee
// this by applying deltas strictly between phase runs, and stores built
// over shared pinned datasets are never updated — sessions clone the
// scene first (scene.Clone).
func (st *RegionStore) ApplyDelta(d *scene.Delta) error {
	if err := st.scene.Apply(d); err != nil {
		return err
	}
	changed := make(map[int]bool, d.Size())
	st.geoMu.Lock()
	for _, id := range d.ChangedIDs() {
		st.regionEpoch[id]++
		changed[id] = true
	}
	st.geoMu.Unlock()
	for _, id := range d.Removed {
		delete(st.byID, id)
		delete(st.derived, id)
	}
	for _, r := range d.Moved {
		st.byID[r.ID] = r
		st.derived[r.ID] = geom.Derive(r.Poly)
	}
	for _, r := range d.Added {
		st.byID[r.ID] = r
		st.derived[r.ID] = geom.Derive(r.Poly)
	}
	st.seedMu.Lock()
	for k := range st.fragSeeds {
		if changed[k.region] {
			delete(st.fragSeeds, k)
		}
	}
	st.seedMu.Unlock()
	st.epoch++
	return nil
}

// Epoch returns the number of deltas applied to the store (0 for a
// freshly built store).
func (st *RegionStore) Epoch() int { return st.epoch }

// EpochOf returns one region's geometry epoch: 0 until a delta first
// changes the region, bumped on every change after that. Session task
// signatures fold these in, because a task's externals can read region
// geometry that changes while its seed working memory stays identical
// (geo-test booleans, fa-predict-area candidate scans).
func (st *RegionStore) EpochOf(id int) uint32 {
	st.geoMu.RLock()
	e := st.regionEpoch[id]
	st.geoMu.RUnlock()
	return e
}

// liveGrid is the session-persistent counterpart of fragIndex: a
// uniform-grid fragment index that survives scene updates. Fragments
// live in stable slots (free-listed on removal), the kind-partitioned
// cell tables hold slot ids, and refresh patches only the slots whose
// fragment changed — same-geometry fragments keep their cells
// untouched. Queries return exactly NearbyFragments' output: the
// candidate set is gathered from the cells, then passes the identical
// ID/bbox filters and is ordered by ascending fragment ID (the pool
// order of an ID-sorted pool).
//
// The grid geometry (origin, cell size) is fixed at construction from
// the initial pool's union bbox. Later fragments may fall outside it;
// cell coordinates clamp, which only coarsens edge cells — both
// insertion and query clamp the same way, so candidates are never
// missed. Single-threaded by design, like fragIndex.
type liveGrid struct {
	store      *RegionStore
	minX, minY float64
	cellW      float64
	cellH      float64
	cols, rows int

	slots  []*Fragment // nil = free slot
	bbs    []geom.Rect
	kinds  []scene.Kind
	free   []int32
	slotOf map[int]int32 // fragment ID -> slot
	cells  map[scene.Kind][][]int32

	mark []uint32
	gen  uint32

	stats LiveGridStats
}

// LiveGridStats counts the grid's update work, proving invalidation is
// targeted: at low churn Retained dominates Reinserted+Removed+Added.
type LiveGridStats struct {
	Refreshes  int64 `json:"refreshes"`
	Retained   int64 `json:"retained"`
	Reinserted int64 `json:"reinserted"`
	Removed    int64 `json:"removed"`
	Added      int64 `json:"added"`
}

// newLiveGrid builds a persistent grid over the initial fragment pool,
// or returns nil when the scan path should be used instead (uncached
// geometry mode, a pool too small to amortize the grid, or a
// degenerate extent) — mirroring buildFragIndex's gating.
func newLiveGrid(store *RegionStore, all []*Fragment) *liveGrid {
	if uncachedGeo.Load() || len(all) < gridMinFragments {
		return nil
	}
	first := true
	var union geom.Rect
	for _, f := range all {
		d := store.Derived(f.RegionID)
		if d == nil {
			continue
		}
		if first {
			union = d.BBox
			first = false
			continue
		}
		union.Min.X = min(union.Min.X, d.BBox.Min.X)
		union.Min.Y = min(union.Min.Y, d.BBox.Min.Y)
		union.Max.X = max(union.Max.X, d.BBox.Max.X)
		union.Max.Y = max(union.Max.Y, d.BBox.Max.Y)
	}
	if first {
		return nil
	}
	w, h := union.W(), union.H()
	if w <= 0 && h <= 0 {
		return nil
	}
	side := 1
	for side*side < len(all) {
		side++
	}
	if side > 128 {
		side = 128
	}
	g := &liveGrid{
		store:  store,
		minX:   union.Min.X,
		minY:   union.Min.Y,
		cols:   side,
		rows:   side,
		cellW:  w / float64(side),
		cellH:  h / float64(side),
		slotOf: map[int]int32{},
		cells:  map[scene.Kind][][]int32{},
	}
	if g.cellW <= 0 {
		g.cols, g.cellW = 1, 1
	}
	if g.cellH <= 0 {
		g.rows, g.cellH = 1, 1
	}
	g.refresh(all)
	// The construction pass counts as adds, not as update work.
	g.stats = LiveGridStats{}
	return g
}

// cellRange maps a bbox to the clamped inclusive cell rectangle.
func (g *liveGrid) cellRange(bb geom.Rect) (c0, r0, c1, r1 int) {
	c0 = clampCell(int((bb.Min.X-g.minX)/g.cellW), g.cols)
	c1 = clampCell(int((bb.Max.X-g.minX)/g.cellW), g.cols)
	r0 = clampCell(int((bb.Min.Y-g.minY)/g.cellH), g.rows)
	r1 = clampCell(int((bb.Max.Y-g.minY)/g.cellH), g.rows)
	if bb.Min.X-g.minX < 0 {
		c0 = 0
	}
	if bb.Min.Y-g.minY < 0 {
		r0 = 0
	}
	return
}

// alloc returns a free slot, growing the parallel arrays as needed.
func (g *liveGrid) alloc() int32 {
	if k := len(g.free); k > 0 {
		si := g.free[k-1]
		g.free = g.free[:k-1]
		return si
	}
	g.slots = append(g.slots, nil)
	g.bbs = append(g.bbs, geom.Rect{})
	g.kinds = append(g.kinds, "")
	g.mark = append(g.mark, 0)
	return int32(len(g.slots) - 1)
}

// insertCells adds the slot to every cell its bbox overlaps.
func (g *liveGrid) insertCells(si int32) {
	kc := g.cells[g.kinds[si]]
	if kc == nil {
		kc = make([][]int32, g.cols*g.rows)
		g.cells[g.kinds[si]] = kc
	}
	c0, r0, c1, r1 := g.cellRange(g.bbs[si])
	for r := r0; r <= r1; r++ {
		for c := c0; c <= c1; c++ {
			cell := r*g.cols + c
			kc[cell] = append(kc[cell], si)
		}
	}
}

// removeCells deletes the slot from every cell its recorded bbox
// overlaps.
func (g *liveGrid) removeCells(si int32) {
	kc := g.cells[g.kinds[si]]
	if kc == nil {
		return
	}
	c0, r0, c1, r1 := g.cellRange(g.bbs[si])
	for r := r0; r <= r1; r++ {
		for c := c0; c <= c1; c++ {
			cell := r*g.cols + c
			s := kc[cell]
			for i, v := range s {
				if v == si {
					kc[cell] = append(s[:i], s[i+1:]...)
					break
				}
			}
		}
	}
}

// refresh patches the grid to reflect the new fragment pool: fragments
// whose kind, region, or region bbox changed are removed and
// reinserted; fragments that merely changed attributes (confidence)
// swap their pointer in place; disappeared fragments free their slots;
// new fragments allocate. Everything else — the overwhelming majority
// at realistic churn — is retained untouched.
func (g *liveGrid) refresh(all []*Fragment) {
	g.stats.Refreshes++
	seen := make(map[int]bool, len(all))
	for _, f := range all {
		seen[f.ID] = true
		d := g.store.Derived(f.RegionID)
		if si, ok := g.slotOf[f.ID]; ok {
			if d == nil {
				g.removeCells(si)
				g.slots[si] = nil
				g.free = append(g.free, si)
				delete(g.slotOf, f.ID)
				g.stats.Removed++
				continue
			}
			old := g.slots[si]
			if old.Type != f.Type || old.RegionID != f.RegionID || g.bbs[si] != d.BBox {
				g.removeCells(si)
				g.slots[si] = f
				g.bbs[si] = d.BBox
				g.kinds[si] = f.Type
				g.insertCells(si)
				g.stats.Reinserted++
			} else {
				g.slots[si] = f
				g.stats.Retained++
			}
			continue
		}
		if d == nil {
			continue
		}
		si := g.alloc()
		g.slots[si] = f
		g.bbs[si] = d.BBox
		g.kinds[si] = f.Type
		g.slotOf[f.ID] = si
		g.insertCells(si)
		g.stats.Added++
	}
	for id, si := range g.slotOf {
		if !seen[id] {
			g.removeCells(si)
			g.slots[si] = nil
			g.free = append(g.free, si)
			delete(g.slotOf, id)
			g.stats.Removed++
		}
	}
}

// query returns the constraint's candidate partners — the same set, in
// the same ascending-ID order, as NearbyFragments over an ID-sorted
// pool of the grid's current fragments.
func (g *liveGrid) query(focal *Fragment, want scene.Kind, radius float64) []*Fragment {
	fd := g.store.Derived(focal.RegionID)
	if fd == nil {
		return nil
	}
	bb := fd.BBox.Expand(radius)
	kc := g.cells[want]
	if kc == nil {
		return nil
	}
	g.gen++
	if g.gen == 0 {
		clear(g.mark)
		g.gen = 1
	}
	gen := g.gen
	c0, r0, c1, r1 := g.cellRange(bb)
	var out []*Fragment
	for r := r0; r <= r1; r++ {
		for c := c0; c <= c1; c++ {
			for _, si := range kc[r*g.cols+c] {
				if g.mark[si] == gen {
					continue
				}
				g.mark[si] = gen
				f := g.slots[si]
				if f == nil || f.ID == focal.ID {
					continue
				}
				if bb.Intersects(g.bbs[si]) {
					out = append(out, f)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats returns the grid's lifetime update counters.
func (g *liveGrid) Stats() LiveGridStats {
	if g == nil {
		return LiveGridStats{}
	}
	return g.stats
}

// checkConsistent verifies every slot's recorded bbox against the
// store (test hook).
func (g *liveGrid) checkConsistent() error {
	for id, si := range g.slotOf {
		f := g.slots[si]
		if f == nil || f.ID != id {
			return fmt.Errorf("livegrid: slot %d inconsistent for fragment %d", si, id)
		}
		d := g.store.Derived(f.RegionID)
		if d == nil || g.bbs[si] != d.BBox {
			return fmt.Errorf("livegrid: fragment %d has stale bbox", id)
		}
	}
	return nil
}
