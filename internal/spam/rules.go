package spam

import (
	"fmt"
	"strings"

	"spampsm/internal/ops5"
	"spampsm/internal/scene"
)

// The rule generators below compile the knowledge base into OPS5
// source. SPAM's production memory was partly hand-built, partly
// mechanically derived from its constraint knowledge; generating the
// per-constraint productions keeps that structure while letting the
// same templates serve both task domains. The generated source is
// parsed by the ops5 front end like any hand-written program.

// linearClasses are the classes whose fragments participate in RTF
// linear-alignment verification (collinear runway pieces, road chains).
var linearClasses = map[scene.Kind]bool{
	scene.Runway: true, scene.Road: true, scene.Taxiway: true, scene.Street: true,
}

// classIndex gives each class a small stable integer for fragment ID
// synthesis in generated rules.
func classIndex(kb *KB, k scene.Kind) int {
	for i, c := range kb.Classes {
		if c == k {
			return i
		}
	}
	return len(kb.Classes)
}

func tierIndex(tier string) int {
	switch tier {
	case "strong":
		return 1
	case "medium":
		return 2
	default:
		return 3
	}
}

// RTFSource generates the region-to-fragment phase program: the
// heuristic classification task. One production per evidence entry,
// plus linear-alignment verification and dominated-hypothesis pruning.
func RTFSource(kb *KB) string {
	var b strings.Builder
	b.WriteString(`; RTF: region-to-fragment classification (generated)
(literalize rtf-task batch status)
(literalize region id batch area elong compact intensity texture status)
(literalize fragment id region type conf status)
(literalize pruned region type)
(external rtf-verify rtf-verify-align)
`)
	for _, ev := range kb.Evidence {
		var tests []string
		rangeTest := func(attr string, lo, hi float64) {
			switch {
			case lo != 0 && hi != 0:
				tests = append(tests, fmt.Sprintf("^%s { >= %g <= %g }", attr, lo, hi))
			case lo != 0:
				tests = append(tests, fmt.Sprintf("^%s >= %g", attr, lo))
			case hi != 0:
				tests = append(tests, fmt.Sprintf("^%s <= %g", attr, hi))
			}
		}
		rangeTest("elong", ev.MinElong, ev.MaxElong)
		rangeTest("area", ev.MinArea, ev.MaxArea)
		rangeTest("intensity", ev.MinInt, ev.MaxInt)
		if ev.MaxTexture != 0 {
			tests = append(tests, fmt.Sprintf("^texture <= %g", ev.MaxTexture))
		}
		if ev.MinCompact != 0 {
			tests = append(tests, fmt.Sprintf("^compact >= %g", ev.MinCompact))
		}
		idBase := classIndex(kb, ev.Class)*10 + tierIndex(ev.Tier)
		fmt.Fprintf(&b, `
(p rtf-%s-%s
   (rtf-task ^status active)
   (region ^id <r> ^status measured %s)
 - (fragment ^region <r> ^type %s)
 - (pruned ^region <r> ^type %s)
  -->
   (call rtf-verify <r>)
   (make fragment ^id (compute <r> * 100 + %d) ^region <r> ^type %s ^conf %d ^status hypothesized))
`, ev.Class, ev.Tier, strings.Join(tests, " "), ev.Class, ev.Class, idBase, ev.Class, ev.Confidence)
	}
	// Linear alignment: collinear fragments of linear classes support
	// each other (the paper's RTF-phase linear alignment).
	for _, k := range kb.Classes {
		if !linearClasses[k] {
			continue
		}
		fmt.Fprintf(&b, `
(p rtf-align-%s
   (rtf-task ^status active)
   { <fw> (fragment ^type %s ^region <r1> ^conf <c> ^status hypothesized) }
   (fragment ^type %s ^region { <r2> <> <r1> } ^status << hypothesized boosted >>)
  -->
   (call rtf-verify-align <r1> <r2>)
   (modify <fw> ^status boosted ^conf (compute <c> + 5)))
`, k, k, k)
	}
	// Prune hypotheses dominated by a much stronger competing
	// interpretation of the same region.
	b.WriteString(`
(p rtf-prune-dominated
   (rtf-task ^status active)
   (fragment ^region <r> ^type <t1> ^conf <c1>)
   { <weak> (fragment ^region <r> ^type { <t2> <> <t1> } ^conf { <c2> < <c1> <= 58 }) }
  -->
   (make pruned ^region <r> ^type <t2>)
   (remove <weak>))
`)
	return b.String()
}

// LCCSource generates the local-consistency-check phase program: the
// constraint-satisfaction task. One check production per constraint,
// shared tally and finish productions. Task scope is carried entirely
// by working memory (the lcc-task WME and the fragments provided),
// which is what makes the Level 1-4 decompositions possible with one
// rule set.
func LCCSource(kb *KB) string {
	var b strings.Builder
	b.WriteString(`; LCC: local consistency checking (generated)
(literalize lcc-task object class cid expected status)
(literalize fragment id region type conf status)
(literalize scope object constraint partner)
(literalize check object constraint partner relation result tallied)
(literalize support object count checked)
(literalize lcc-result object support checked status)
(external geo-test)
`)
	for _, c := range kb.Constraints {
		// Two check productions per constraint, partitioned by partner
		// confidence. The partition does not change which checks run —
		// exactly one of the two fires per (focal, partner) — but it
		// mirrors SPAM's large production memory, where each WM change
		// is matched against many candidate productions.
		for _, band := range []struct {
			suffix string
			test   string
		}{
			{"hi", "^conf >= 55"},
			{"lo", "^conf < 55"},
		} {
			fmt.Fprintf(&b, `
(p lcc-check-%s-%s
   (lcc-task ^object <f> ^class %s ^cid << %s all >> ^status active)
   (fragment ^id <f> ^region <rf>)
   (fragment ^id { <p> <> <f> } ^type %s %s ^region <rp>)
   (scope ^object <f> ^constraint %s ^partner <p>)
 - (check ^object <f> ^constraint %s ^partner <p>)
  -->
   (make check ^object <f> ^constraint %s ^partner <p> ^relation %s
         ^result (geo-test %s <rf> <rp> %g) ^tallied no))
`, c.ID, band.suffix, c.Subject, c.ID, c.Object, band.test, c.ID, c.ID, c.ID, c.Relation, c.Relation, c.Eps)
		}
		// A dormant audit production per constraint: it joins fully over
		// the focal/partner/check combinations but its final condition
		// (a review-status task) never holds, so it consumes match
		// without ever firing — the cost profile of SPAM's 600+
		// production memory, most of which is quiet at any moment.
		fmt.Fprintf(&b, `
(p lcc-audit-%s
   (fragment ^id <f> ^type %s ^region <rf>)
   (fragment ^id { <p> <> <f> } ^type %s ^region <rp>)
   (check ^object <f> ^constraint %s ^partner <p> ^result t)
   (lcc-task ^object <f> ^status review)
  -->
   (make support ^object <f> ^count 0 ^checked 0))
`, c.ID, c.Subject, c.Object, c.ID)
	}
	// Relation-level monitors, likewise dormant.
	rels := map[string]bool{}
	for _, c := range kb.Constraints {
		if rels[c.Relation] {
			continue
		}
		rels[c.Relation] = true
		fmt.Fprintf(&b, `
(p lcc-monitor-%s
   (check ^relation %s ^result t ^tallied yes ^object <f>)
   (lcc-task ^object <f> ^status review)
  -->
   (make support ^object <f> ^count 0 ^checked 0))
`, c.Relation, c.Relation)
	}
	b.WriteString(`
(p lcc-tally-consistent
   (lcc-task ^object <f> ^status active)
   { <c> (check ^object <f> ^result t ^tallied no) }
   { <s> (support ^object <f> ^count <n> ^checked <k>) }
  -->
   (modify <c> ^tallied yes)
   (modify <s> ^count (compute <n> + 1) ^checked (compute <k> + 1)))

(p lcc-tally-inconsistent
   (lcc-task ^object <f> ^status active)
   { <c> (check ^object <f> ^result f ^tallied no) }
   { <s> (support ^object <f> ^count <n> ^checked <k>) }
  -->
   (modify <c> ^tallied yes)
   (modify <s> ^checked (compute <k> + 1)))

(p lcc-finish-consistent
   { <t> (lcc-task ^object <f> ^expected <k> ^status active) }
   (support ^object <f> ^checked <k> ^count { <n> > 0 })
  -->
   (modify <t> ^status done)
   (make lcc-result ^object <f> ^support <n> ^checked <k> ^status consistent))

(p lcc-finish-weak
   { <t> (lcc-task ^object <f> ^expected <k> ^status active) }
   (support ^object <f> ^checked <k> ^count 0)
  -->
   (modify <t> ^status done)
   (make lcc-result ^object <f> ^support 0 ^checked <k> ^status weak))
`)
	return b.String()
}

// FASource generates the functional-area phase program: consistent
// fragments aggregate into functional-area contexts, and each context
// predicts the sub-areas the paper describes ("the context determines
// the prediction").
func FASource(kb *KB) string {
	var b strings.Builder
	b.WriteString(`; FA: functional-area aggregation (generated)
(literalize fa-task seed fatype expected status)
(literalize fragment id region type conf status)
(literalize consistency object partner relation result)
(literalize fa id seed fatype nmembers status)
(literalize member fa frag kind)
(literalize prediction fa kind candidates)
(external fa-predict-area)

(p fa-create
   { <t> (fa-task ^seed <f> ^fatype <ft> ^status active) }
   (fragment ^id <f>)
  -->
   (modify <t> ^status collecting)
   (make fa ^id <f> ^seed <f> ^fatype <ft> ^nmembers 0 ^status open))
`)
	for _, spec := range kb.FAs {
		for _, m := range spec.Members {
			fmt.Fprintf(&b, `
(p fa-collect-%s-%s
   (fa-task ^seed <f> ^status collecting)
   { <a> (fa ^seed <f> ^fatype %s ^status open ^nmembers <n>) }
   (consistency ^object <f> ^partner <p> ^result t)
   (fragment ^id <p> ^type %s)
 - (member ^fa <f> ^frag <p>)
  -->
   (make member ^fa <f> ^frag <p> ^kind %s)
   (modify <a> ^nmembers (compute <n> + 1)))
`, spec.Type, m, spec.Type, m, m)
		}
		for _, pk := range spec.Predicts {
			fmt.Fprintf(&b, `
(p fa-predict-%s-%s
   (fa-task ^seed <f> ^status collecting)
   (fa ^seed <f> ^fatype %s ^nmembers >= 2 ^status open)
   (fragment ^id <f> ^region <r>)
 - (prediction ^fa <f> ^kind %s)
  -->
   (make prediction ^fa <f> ^kind %s ^candidates (fa-predict-area <r> %s)))
`, spec.Type, pk, spec.Type, pk, pk, pk)
		}
	}
	b.WriteString(`
(p fa-close
   { <t> (fa-task ^seed <f> ^expected <k> ^status collecting) }
   { <a> (fa ^seed <f> ^nmembers <k> ^status open) }
  -->
   (modify <t> ^status done)
   (modify <a> ^status closed))
`)
	return b.String()
}

// ModelSource generates the model-generation/evaluation phase program:
// closed functional areas are scored into a scene model; conflicting
// hypotheses (two functional areas seeded on the same region) are
// disambiguated by stereo verification, the paper's top-down activity
// in MODEL phase.
func ModelSource(kb *KB) string {
	var b strings.Builder
	b.WriteString(`; MODEL: model generation and evaluation (generated)
(literalize model-task status)
(literalize fa id seed fatype nmembers status)
(literalize fragment id region type conf status)
(literalize model id score nfas status)
(external stereo-verify)

(p model-init
   { <t> (model-task ^status active) }
  -->
   (modify <t> ^status scoring)
   (make model ^id 1 ^score 0 ^nfas 0 ^status building))

(p model-add-fa
   (model-task ^status scoring)
   { <m> (model ^status building ^score <s> ^nfas <n>) }
   { <a> (fa ^status closed ^nmembers <k>) }
  -->
   (modify <a> ^status in-model)
   (modify <m> ^score (compute <s> + <k> + 1) ^nfas (compute <n> + 1)))

(p model-conflict
   (model-task ^status scoring)
   (fa ^seed <f1> ^status in-model)
   (fragment ^id <f1> ^region <r>)
   { <a2> (fa ^seed { <f2> > <f1> } ^status in-model) }
   (fragment ^id <f2> ^region <r>)
  -->
   (call stereo-verify <r> <r>)
   (modify <a2> ^status rejected))

(p model-finish
   { <t> (model-task ^status scoring) }
   { <m> (model ^status building) }
 - (fa ^status closed)
  -->
   (modify <t> ^status done)
   (modify <m> ^status final))
`)
	return b.String()
}

// Programs bundles the four phase programs parsed and ready to
// instantiate engines from.
type Programs struct {
	RTF   *ops5.Program
	LCC   *ops5.Program
	FA    *ops5.Program
	Model *ops5.Program
}

// BuildPrograms parses the generated phase programs for a knowledge
// base.
func BuildPrograms(kb *KB) (*Programs, error) {
	rtf, err := ops5.Parse(RTFSource(kb))
	if err != nil {
		return nil, fmt.Errorf("spam: RTF rules: %w", err)
	}
	lcc, err := ops5.Parse(LCCSource(kb))
	if err != nil {
		return nil, fmt.Errorf("spam: LCC rules: %w", err)
	}
	fa, err := ops5.Parse(FASource(kb))
	if err != nil {
		return nil, fmt.Errorf("spam: FA rules: %w", err)
	}
	model, err := ops5.Parse(ModelSource(kb))
	if err != nil {
		return nil, fmt.Errorf("spam: MODEL rules: %w", err)
	}
	return &Programs{RTF: rtf, LCC: lcc, FA: fa, Model: model}, nil
}

// NumProductions returns the total production count across phases.
func (p *Programs) NumProductions() int {
	return len(p.RTF.Productions) + len(p.LCC.Productions) +
		len(p.FA.Productions) + len(p.Model.Productions)
}
