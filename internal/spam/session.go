// Interpretation sessions: incremental re-interpretation with cost
// proportional to scene churn.
//
// A Session holds a live interpretation of one scene — a private scene
// clone, its RegionStore, a persistent fragment grid, and every phase
// task's quiesced Rete engine — and folds scene deltas into it. The
// decomposition is keyed stably and identically to the classic
// builders (RTF position batches, LCC units by focal fragment and
// constraint, FA tasks by seed fragment), so the same logical task
// keeps its identity across updates — identical decomposition matters
// because RTF classification is batch-composition-dependent
// (rtf-align boosts pairs within a batch). On each run the session
// reassembles every task's seed working memory, collapses each seed
// to its rete.RouteDigest, appends the geometry epochs of the regions
// the task's externals can read (geo-test booleans and fa-predict-area
// candidate scans depend on region geometry the seed rows don't
// capture), and diffs the signature against the one the task last ran
// with:
//
//   - unchanged signature → the task's cached result (and its warm
//     engine, holding the final working memory) is reused outright, at
//     zero simulated cost beyond the digest comparison;
//   - changed signature with a retained engine → the engine is returned
//     to the empty-WM state (ops5.ResetForUpdate retracts the live WM
//     through the Rete network), reloaded with the new seeds, and
//     re-run — the warm engine keeps its compiled network, token pools
//     and hash indexes, and the retract+reload charge is the update's
//     honestly accounted cost;
//   - new key → a fresh engine, as in a from-scratch run;
//   - disappeared key → the task and its engine are dropped.
//
// Because tasks share nothing and extraction orders every output, the
// updated Interpretation is byte-identical to interpreting the updated
// scene from scratch — the property the incremental differential
// oracle (session_test.go, `make oracle`) enforces. Only the charged
// cost differs: proportional to churn instead of scene size.
//
// Sessions are single-threaded by contract: one Update at a time, no
// concurrent Interpret. The serving layer wraps each session in its
// own mutex (per-session serialization, cross-session parallelism).
package spam

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"spampsm/internal/ops5"
	"spampsm/internal/rete"
	"spampsm/internal/scene"
	"spampsm/internal/tlp"
)

// diffInstrPerSeed is the modeled charge of one seed-digest comparison
// during update diffing — a table probe, costed like one alpha-memory
// scan step so the diff itself stays visible in the update's simulated
// cost (UpdateReport.DiffInstr) rather than pretending to be free.
const diffInstrPerSeed = rete.CostAlphaScan

// Session is a live, updatable interpretation of one scene.
type Session struct {
	ds   *Dataset // private: cloned scene, own RegionStore; shared KB/Progs
	opt  InterpretOptions
	pool *tlp.Pool // private runner when opt.Runner is nil; persists across updates
	grid *liveGrid // session-persistent LCC partner index

	tasks   map[string]*sessTask
	last    *Interpretation
	updates int
}

// sessTask is one stable task's retained state between runs.
type sessTask struct {
	sig  string      // seed-digest signature of the last run
	res  *tlp.Result // cached result; Engine retained warm for reuse/reset
	live bool        // touched by the current run (sweep mark)
}

// UpdateReport accounts one session run's incremental work. The
// initial interpretation is update 0 (everything Fresh); subsequent
// updates show the reuse the stable decomposition achieved and the
// charged cost of exactly the work that re-ran.
type UpdateReport struct {
	Update    int `json:"update"`
	DeltaSize int `json:"deltaSize"` // region changes folded in by this update

	Tasks   int `json:"tasks"`   // tasks enumerated this run
	Reused  int `json:"reused"`  // unchanged signature: cached result returned
	Rerun   int `json:"rerun"`   // warm engine reset, reloaded and re-run
	Fresh   int `json:"fresh"`   // newly built engines
	Dropped int `json:"dropped"` // stale tasks (and engines) discarded

	// SeedsDiffed counts the seed digests compared; DiffInstr is their
	// modeled charge (diffInstrPerSeed each), included in UpdateInstr.
	SeedsDiffed int     `json:"seedsDiffed"`
	DiffInstr   float64 `json:"diffInstr"`

	// RetractedWMEs is the seed volume unloaded from warm engines
	// (ops5.MemStats.RetractedWMEs summed over the reset tasks).
	RetractedWMEs int `json:"retractedWMEs"`

	// UpdateInstr is the charged simulated cost of this run: the diff
	// charge plus the full cost (retract + reload + match + act) of the
	// tasks that actually ran. Reused tasks contribute nothing.
	UpdateInstr float64 `json:"updateInstr"`

	Wall time.Duration `json:"wallNs"`

	// Grid and Geo surface the session's incremental index counters:
	// the live grid's patch work and the store's predicate-memo
	// hit/eviction accounting.
	Grid LiveGridStats `json:"grid"`
	Geo  GeoMemoStats  `json:"geo"`
}

// NewSession opens a session over the dataset: the scene is cloned
// (the dataset — often shared and pinned — is never mutated), the
// store is private, and the knowledge base and compiled programs are
// shared. Call Interpret once for the initial interpretation, then
// Update per scene delta. The options are fixed for the session's
// lifetime so the decomposition stays stable.
func NewSession(ds *Dataset, opt InterpretOptions) *Session {
	if opt.Workers < 1 {
		opt.Workers = 1
	}
	if opt.Level == 0 {
		opt.Level = Level3
	}
	if opt.RTFBatch < 1 {
		opt.RTFBatch = 3
	}
	// Prebuild overlaps first-run engine construction but is pointless
	// (and would fight warm-engine reuse) on updates; sessions skip it.
	opt.Prebuild = false
	s := &Session{
		ds:    NewDatasetWith(ds.Scene.Clone(), ds.KB, ds.Progs),
		opt:   opt,
		tasks: map[string]*sessTask{},
	}
	if opt.Runner == nil {
		// One pool for the session's lifetime: its workers, memory gate
		// and throttle accounting span every update.
		s.pool = &tlp.Pool{
			Workers:      opt.Workers,
			Policy:       opt.Sched,
			MemBudget:    opt.MemBudget,
			Faults:       opt.Faults,
			MaxRetries:   opt.MaxRetries,
			TaskTimeout:  opt.TaskTimeout,
			RetryBackoff: opt.RetryBackoff,
			FiringBudget: opt.FiringBudget,
		}
	}
	return s
}

// Scene returns the session's private scene (mutated by Update).
func (s *Session) Scene() *scene.Scene { return s.ds.Scene }

// Store returns the session's private region store.
func (s *Session) Store() *RegionStore { return s.ds.Store }

// Updates returns the number of deltas folded in so far.
func (s *Session) Updates() int { return s.updates }

// Last returns the most recent interpretation, or nil before the
// first Interpret.
func (s *Session) Last() *Interpretation { return s.last }

// GridStats returns the persistent fragment grid's update counters
// (zero while the session runs the scan path).
func (s *Session) GridStats() LiveGridStats { return s.grid.Stats() }

// Interpret runs the initial interpretation (or re-runs the current
// scene state; an unchanged scene reuses every cached task).
func (s *Session) Interpret(ctx context.Context) (*Interpretation, *UpdateReport, error) {
	return s.run(ctx, 0)
}

// Update folds a scene delta into the session and re-interprets: the
// store applies the delta (derived geometry, predicate-memo epochs and
// the fragment-seed cache invalidate for exactly the changed regions),
// and only the tasks whose seed signatures changed re-run, on their
// retained warm engines. The returned interpretation is byte-identical
// to a from-scratch interpretation of the updated scene.
func (s *Session) Update(ctx context.Context, d *scene.Delta) (*Interpretation, *UpdateReport, error) {
	if err := s.ds.Store.ApplyDelta(d); err != nil {
		return nil, nil, err
	}
	s.updates++
	return s.run(ctx, d.Size())
}

// taskSpec is one stable task of the current decomposition: its key,
// its full seed working memory (already assembled, so the signature
// can be diffed before deciding to run), and the engine-build inputs.
type taskSpec struct {
	key   string
	label string
	group string
	est   float64
	mem   float64
	prog  *ops5.Program
	seeds []ops5.Seed
	geo   string // geometry-epoch signature component (geoSig)
	geoN  int    // epoch entries in geo, for diff-cost accounting
}

// seedSig collapses a seed set to its order-sensitive digest
// signature. Each seed's RouteDigest is length-prefixed, so no two
// distinct seed sequences share a signature by concatenation.
func seedSig(seeds []ops5.Seed) string {
	b := make([]byte, 0, 64*len(seeds))
	for _, sd := range seeds {
		d := sd.Digest
		if d == "" {
			d = rete.RouteDigest(sd.Class, sd.Vals)
		}
		b = binary.AppendUvarint(b, uint64(len(d)))
		b = append(b, d...)
	}
	return string(b)
}

// geoSig encodes the geometry epochs of the regions a task's externals
// can read, as sorted deduplicated (id, epoch) pairs. The seed rows
// alone under-determine a task's output whenever an external reads the
// store: geo-test booleans (LCC) and fa-predict-area candidate counts
// (FA) change with region geometry while the fragment tuples and
// quantized measurements stay identical. Folding the epochs into the
// signature makes every such task re-run exactly when a delta touched
// geometry it can observe.
func (s *Session) geoSig(ids []int) (string, int) {
	if len(ids) == 0 {
		return "", 0
	}
	sort.Ints(ids)
	b := make([]byte, 0, 4*len(ids))
	last, n := -1, 0
	for _, id := range ids {
		if id == last {
			continue
		}
		last = id
		b = binary.AppendUvarint(b, uint64(id))
		b = binary.AppendUvarint(b, uint64(s.ds.Store.EpochOf(id)))
		n++
	}
	return string(b), n
}

// lccUnitRegions collects the regions an LCC task's geo-test calls can
// read: the focal fragment's region and every partner's region.
func lccUnitRegions(units []lccUnit) []int {
	var ids []int
	for _, u := range units {
		ids = append(ids, u.focal.RegionID)
		for _, ps := range u.partners {
			for _, p := range ps {
				ids = append(ids, p.RegionID)
			}
		}
	}
	return ids
}

// faNeighborhood collects the regions an FA task's fa-predict-area
// scan can read: the seed region plus every region whose bbox
// intersects the seed bbox expanded by faPredictRadius — the
// external's exact candidate-set determination, so the signature
// changes iff a prediction's candidate count could.
func (s *Session) faNeighborhood(seedRegion int) []int {
	st := s.ds.Store
	ids := []int{seedRegion}
	d := st.Derived(seedRegion)
	if d == nil {
		return ids
	}
	bb := d.BBox.Expand(faPredictRadius)
	for _, other := range st.Scene().Regions {
		if other.ID == seedRegion {
			continue
		}
		if od := st.Derived(other.ID); od != nil && bb.Intersects(od.BBox) {
			ids = append(ids, other.ID)
		}
	}
	return ids
}

// run executes the four-phase interpretation over the session's
// current scene state, reusing cached tasks wherever the stable key's
// seed signature is unchanged.
func (s *Session) run(ctx context.Context, deltaSize int) (*Interpretation, *UpdateReport, error) {
	start := time.Now()
	rep := &UpdateReport{Update: s.updates, DeltaSize: deltaSize}
	runner := s.opt.Runner
	if runner == nil {
		runner = &poolRunner{pool: s.pool}
	}
	in := &Interpretation{Dataset: s.ds}
	if s.pool != nil {
		defer func() { in.MemSched = s.pool.MemSched() }()
	}
	for _, st := range s.tasks {
		st.live = false
	}
	finish := func() {
		for k, st := range s.tasks {
			if !st.live {
				delete(s.tasks, k)
				rep.Dropped++
			}
		}
		rep.UpdateInstr += rep.DiffInstr
		rep.Wall = time.Since(start)
		rep.Grid = s.grid.Stats()
		rep.Geo = s.ds.Store.GeoStats()
	}

	// Phase 1: RTF.
	rtf, err := s.rtfSpecs()
	if err != nil {
		finish()
		return in, rep, fmt.Errorf("spam: session RTF: %w", err)
	}
	rtfResults, err := s.runSpecs(ctx, runner, rep, rtf)
	if err != nil {
		finish()
		return in, rep, fmt.Errorf("spam: session RTF: %w", err)
	}
	if err := settlePhase(ctx, in, s.opt.Degraded, "RTF", rtfResults); err != nil {
		in.Phases = append(in.Phases, phaseStats("RTF", rtfResults, 0))
		finish()
		return in, rep, err
	}
	in.Fragments = ExtractFragments(rtfResults)
	if s.grid == nil {
		s.grid = newLiveGrid(s.ds.Store, in.Fragments)
	} else {
		s.grid.refresh(in.Fragments)
	}
	in.Phases = append(in.Phases, phaseStats("RTF", rtfResults, len(in.Fragments)))

	// Phase 2: LCC, partner queries through the persistent grid.
	lcc, err := s.lccSpecs(in.Fragments)
	if err != nil {
		finish()
		return in, rep, fmt.Errorf("spam: session LCC: %w", err)
	}
	lccResults, err := s.runSpecs(ctx, runner, rep, lcc)
	if err != nil {
		finish()
		return in, rep, fmt.Errorf("spam: session LCC: %w", err)
	}
	if err := settlePhase(ctx, in, s.opt.Degraded, "LCC", lccResults); err != nil {
		in.Phases = append(in.Phases, phaseStats("LCC", lccResults, 0))
		finish()
		return in, rep, err
	}
	in.Pairs, in.Outcomes = ExtractLCC(lccResults)

	// Phase 3: FA.
	fa, err := s.faSpecs(in.Fragments, in.Pairs, in.Outcomes)
	if err != nil {
		finish()
		return in, rep, fmt.Errorf("spam: session FA: %w", err)
	}
	faResults, err := s.runSpecs(ctx, runner, rep, fa)
	if err != nil {
		finish()
		return in, rep, fmt.Errorf("spam: session FA: %w", err)
	}
	if len(faResults) > 0 {
		if err := settlePhase(ctx, in, s.opt.Degraded, "FA", faResults); err != nil {
			in.Phases = append(in.Phases, phaseStats("FA", faResults, 0))
			finish()
			return in, rep, err
		}
	}
	in.FAs, in.Predictions = ExtractFA(faResults)

	// FA→LCC re-entry, as in InterpretContext. Re-entry fragments get
	// pool-dependent fresh IDs, so their tasks key under a distinct
	// "lccr" namespace and simply re-run whenever the pool shifts.
	if s.opt.ReEntry && len(in.Predictions) > 0 {
		extra := s.ds.reEntryFragments(in)
		if len(extra) > 0 {
			pool2 := append(append([]*Fragment(nil), in.Fragments...), extra...)
			re, err := s.reEntrySpecs(extra, pool2)
			if err != nil {
				finish()
				return in, rep, fmt.Errorf("spam: session LCC re-entry: %w", err)
			}
			if len(re) > 0 {
				reResults, err := s.runSpecs(ctx, runner, rep, re)
				if err != nil {
					finish()
					return in, rep, fmt.Errorf("spam: session LCC re-entry: %w", err)
				}
				if err := settlePhase(ctx, in, s.opt.Degraded, "LCC re-entry", reResults); err != nil {
					in.Phases = append(in.Phases, phaseStats("LCC", reResults, 0))
					finish()
					return in, rep, err
				}
				rePairs, reOuts := ExtractLCC(reResults)
				in.Pairs = append(in.Pairs, rePairs...)
				in.Outcomes = append(in.Outcomes, reOuts...)
				in.Fragments = append(in.Fragments, extra...)
				lccResults = append(lccResults, reResults...)
			}
		}
	}
	in.Phases = append(in.Phases, phaseStats("LCC", lccResults, countConsistent(in.Outcomes)))
	in.Phases = append(in.Phases, phaseStats("FA", faResults, countClosed(in.FAs)))

	// Phase 4: MODEL.
	model, err := s.modelSpec(in.Fragments, in.FAs)
	if err != nil {
		finish()
		return in, rep, fmt.Errorf("spam: session MODEL: %w", err)
	}
	modelResults, err := s.runSpecs(ctx, runner, rep, []taskSpec{model})
	if err != nil {
		finish()
		return in, rep, fmt.Errorf("spam: session MODEL: %w", err)
	}
	if err := settlePhase(ctx, in, s.opt.Degraded, "MODEL", modelResults); err != nil {
		in.Phases = append(in.Phases, phaseStats("MODEL", modelResults, 0))
		finish()
		return in, rep, err
	}
	in.Model, in.ModelFound = ExtractModel(modelResults)
	nModels := 0
	if in.ModelFound {
		nModels = 1
	}
	in.Phases = append(in.Phases, phaseStats("MODEL", modelResults, nModels))
	in.Completeness.Complete = in.Completeness.Failed == 0 && in.Completeness.Cancelled == 0
	finish()
	s.last = in
	return in, rep, nil
}

// runSpecs diffs each spec's seed signature against the cached task
// state, reuses unchanged tasks, and runs the changed/new remainder
// as one queue through the session's runner (retaining the pool's
// retry, quarantine and memory-gate semantics). Results come back in
// spec order; engines stay attached for extraction and warm reuse.
func (s *Session) runSpecs(ctx context.Context, runner Runner, rep *UpdateReport, specs []taskSpec) ([]*tlp.Result, error) {
	results := make([]*tlp.Result, len(specs))
	var tasks []*tlp.Task
	var pending []int // spec index per submitted task
	for i := range specs {
		sp := &specs[i]
		rep.Tasks++
		rep.SeedsDiffed += len(sp.seeds) + sp.geoN
		rep.DiffInstr += float64(len(sp.seeds)+sp.geoN) * diffInstrPerSeed
		st := s.tasks[sp.key]
		if st != nil && st.live {
			return nil, fmt.Errorf("spam: session: duplicate task key %s", sp.key)
		}
		// seedSig is a prefix code, so appending the epoch component
		// keeps the combined signature collision-free.
		sig := seedSig(sp.seeds) + sp.geo
		if st != nil && st.sig == sig && st.res != nil && st.res.Err == nil {
			st.live = true
			results[i] = st.res
			rep.Reused++
			continue
		}
		// Changed or new: take the warm engine (if any) for a
		// reset+reload; the cached result is dead either way.
		var warm *ops5.Engine
		if st != nil {
			if st.res != nil {
				warm = st.res.Engine
				st.res = nil
			}
		} else {
			st = &sessTask{}
			s.tasks[sp.key] = st
		}
		if warm != nil {
			rep.Rerun++
		} else {
			rep.Fresh++
		}
		st.sig = sig
		st.live = true
		seeds := sp.seeds
		prog := sp.prog
		capture := s.opt.Capture
		store := s.ds.Store
		build := func(sc *ops5.Scratch) (*ops5.Engine, error) {
			// The warm engine is consumed by the first attempt only: a
			// retry after a failed attempt rebuilds from scratch, keeping
			// re-execution idempotent even if the failure left the warm
			// engine mid-operation.
			if e := warm; e != nil {
				warm = nil
				if err := e.ResetForUpdate(); err != nil {
					return nil, err
				}
				if err := e.AssertBatch(seeds); err != nil {
					return nil, err
				}
				return e, nil
			}
			e, err := newTaskEngine(prog, capture, sc)
			if err != nil {
				return nil, err
			}
			store.Register(e)
			if err := e.AssertBatch(seeds); err != nil {
				return nil, err
			}
			return e, nil
		}
		tasks = append(tasks, &tlp.Task{
			ID:        sp.key,
			Label:     sp.label,
			Group:     sp.group,
			EstSize:   sp.est,
			MemEst:    sp.mem,
			Build:     func() (*ops5.Engine, error) { return build(nil) },
			BuildWith: build,
		})
		pending = append(pending, i)
	}
	if len(tasks) == 0 {
		return results, nil
	}
	rs, err := runner.RunTasks(ctx, tasks)
	if err != nil {
		return nil, err
	}
	// Results return in queue order, which a scheduling policy may
	// permute; rejoin them to their specs by task ID.
	byID := make(map[string]*tlp.Result, len(rs))
	for _, r := range rs {
		if r != nil {
			byID[r.TaskID] = r
		}
	}
	for _, i := range pending {
		r := byID[specs[i].key]
		results[i] = r
		s.tasks[specs[i].key].res = r
		if r != nil && r.Err == nil {
			rep.UpdateInstr += r.Stats.TotalInstr()
			if r.Log != nil {
				rep.RetractedWMEs += r.Log.Mem.RetractedWMEs
			}
		}
	}
	return results, nil
}

// rtfSpecs enumerates the RTF tasks over the current scene with the
// classic position batching (regions[start:end], batchID =
// start/RTFBatch). The batching must be identical to BuildRTFTasks —
// not merely stable — because RTF classification depends on batch
// composition: rtf-align boosts fragment pairs within one task's
// working memory, so grouping regions differently than a from-scratch
// run changes confidences. The price is that a removal shifts every
// later region's batch, re-running those batches; RTF is the cheapest
// phase, so the churn-proportionality of the whole update survives.
//
// The batch regions' geometry epochs join the signature: the alignment
// calls read region geometry that can move while the quantized
// measurement rows stay identical.
func (s *Session) rtfSpecs() ([]taskSpec, error) {
	store := s.ds.Store
	prog := s.ds.Progs.RTF
	name := store.Scene().Name
	regions := store.Scene().Regions
	batchSize := s.opt.RTFBatch
	var specs []taskSpec
	for start := 0; start < len(regions); start += batchSize {
		end := start + batchSize
		if end > len(regions) {
			end = len(regions)
		}
		regs := regions[start:end]
		batchID := start / batchSize
		seeds, err := rtfSeeds(prog, store, batchID, regs)
		if err != nil {
			return nil, err
		}
		ids := make([]int, len(regs))
		for i, r := range regs {
			ids[i] = r.ID
		}
		geo, geoN := s.geoSig(ids)
		specs = append(specs, taskSpec{
			key:   fmt.Sprintf("rtf-%s-%d", name, batchID),
			label: fmt.Sprintf("RTF batch %d (%d regions)", batchID, len(regs)),
			group: "rtf",
			est:   float64(len(regs)),
			mem:   taskMemEst(1 + 2*len(regs)),
			prog:  prog,
			seeds: seeds,
			geo:   geo,
			geoN:  geoN,
		})
	}
	return specs, nil
}

// gridQuery is the session's partner query: the persistent grid when
// one was built, NearbyFragments' scan otherwise — the same candidate
// sets, in the same ascending-ID order, either way.
func (s *Session) gridQuery(all []*Fragment) func(*Fragment, Constraint) []*Fragment {
	return func(f *Fragment, c Constraint) []*Fragment {
		if s.grid != nil {
			return s.grid.query(f, c.Object, c.Radius)
		}
		return NearbyFragments(s.ds.Store, f, c.Object, all, c.Radius)
	}
}

// lccSpecs enumerates the LCC tasks at the session's level with stable
// keys: Level 4 by object class, Level 3 by focal fragment, Level 2 by
// (focal, constraint), Level 1 by (focal, constraint, partner).
func (s *Session) lccSpecs(frags []*Fragment) ([]taskSpec, error) {
	units := unitsWith(s.ds.KB, frags, s.opt.Level, s.gridQuery(frags))
	return s.lccUnitSpecs(units, "lcc")
}

// reEntrySpecs enumerates the FA→LCC re-entry tasks under the "lccr"
// key namespace. The re-entry pool includes fragments the persistent
// grid does not hold, so partner queries use the classic transient
// index path.
func (s *Session) reEntrySpecs(extra, pool []*Fragment) ([]taskSpec, error) {
	units := unitsForLevel(s.ds.KB, s.ds.Store, extra, pool, s.opt.Level)
	return s.lccUnitSpecs(units, "lccr")
}

// lccUnitSpecs converts LCC work units to stable-keyed task specs.
func (s *Session) lccUnitSpecs(units []lccUnit, prefix string) ([]taskSpec, error) {
	store := s.ds.Store
	prog := s.ds.Progs.LCC
	name := store.Scene().Name
	level := s.opt.Level
	if level == Level4 {
		byClass := map[scene.Kind][]lccUnit{}
		for _, u := range units {
			byClass[u.focal.Type] = append(byClass[u.focal.Type], u)
		}
		var classes []scene.Kind
		for k := range byClass {
			classes = append(classes, k)
		}
		sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
		specs := make([]taskSpec, 0, len(classes))
		for _, k := range classes {
			group := byClass[k]
			est := 0
			for _, u := range group {
				est += u.expected
			}
			seeds, err := lccSeeds(prog, store, group)
			if err != nil {
				return nil, err
			}
			geo, geoN := s.geoSig(lccUnitRegions(group))
			specs = append(specs, taskSpec{
				key:   fmt.Sprintf("%s4-%s-%s", prefix, name, k),
				label: fmt.Sprintf("LCC L4 class %s (%d objects)", k, len(group)),
				group: string(k),
				est:   float64(est),
				mem:   taskMemEst(2*est + 3*len(group)),
				prog:  prog,
				seeds: seeds,
				geo:   geo,
				geoN:  geoN,
			})
		}
		return specs, nil
	}
	specs := make([]taskSpec, 0, len(units))
	for _, u := range units {
		key := fmt.Sprintf("%s%d-%s-o%d", prefix, level, name, u.focal.ID)
		switch level {
		case Level2:
			key += "-" + u.cid
		case Level1:
			pid := 0
			for _, ps := range u.partners {
				for _, p := range ps {
					pid = p.ID
				}
			}
			key += fmt.Sprintf("-%s-p%d", u.cid, pid)
		}
		seeds, err := lccSeeds(prog, store, []lccUnit{u})
		if err != nil {
			return nil, err
		}
		geo, geoN := s.geoSig(lccUnitRegions([]lccUnit{u}))
		specs = append(specs, taskSpec{
			key:   key,
			label: fmt.Sprintf("LCC L%d object %d %s (%d checks)", level, u.focal.ID, u.cid, u.expected),
			group: string(u.focal.Type),
			est:   float64(u.expected),
			mem:   taskMemEst(2*u.expected + 3),
			prog:  prog,
			seeds: seeds,
			geo:   geo,
			geoN:  geoN,
		})
	}
	return specs, nil
}

// faSpecs enumerates the FA tasks — one per (spec, consistent seed
// fragment), keyed by the seed fragment's ID as in BuildFATasks.
func (s *Session) faSpecs(frags []*Fragment, pairs []ConsistentPair, outcomes []LCCOutcome) ([]taskSpec, error) {
	store := s.ds.Store
	prog := s.ds.Progs.FA
	name := store.Scene().Name
	byID := map[int]*Fragment{}
	for _, f := range frags {
		byID[f.ID] = f
	}
	consistent := map[int]bool{}
	for _, o := range outcomes {
		if o.Status == "consistent" {
			consistent[o.Object] = true
		}
	}
	pairsByObject := map[int][]ConsistentPair{}
	for _, p := range pairs {
		pairsByObject[p.Object] = append(pairsByObject[p.Object], p)
	}
	var specs []taskSpec
	for _, spec := range s.ds.KB.FAs {
		memberKinds := map[scene.Kind]bool{}
		for _, m := range spec.Members {
			memberKinds[m] = true
		}
		for _, f := range frags {
			if f.Type != spec.Seed || !consistent[f.ID] {
				continue
			}
			var members []*Fragment
			var memberPairs []ConsistentPair
			seen := map[int]bool{}
			for _, p := range pairsByObject[f.ID] {
				pf := byID[p.Partner]
				if pf == nil || !memberKinds[pf.Type] {
					continue
				}
				memberPairs = append(memberPairs, p)
				if !seen[pf.ID] {
					seen[pf.ID] = true
					members = append(members, pf)
				}
			}
			seeds, err := faSeeds(prog, store, f, members, memberPairs, spec.Type)
			if err != nil {
				return nil, err
			}
			geo, geoN := s.geoSig(s.faNeighborhood(f.RegionID))
			specs = append(specs, taskSpec{
				key:   fmt.Sprintf("fa-%s-%s-%d", name, spec.Type, f.ID),
				label: fmt.Sprintf("FA %s seed %d (%d members)", spec.Type, f.ID, len(members)),
				group: "fa-" + string(spec.Type),
				est:   float64(len(members) + 1),
				mem:   taskMemEst(len(members) + len(memberPairs) + 2),
				prog:  prog,
				seeds: seeds,
				geo:   geo,
				geoN:  geoN,
			})
		}
	}
	return specs, nil
}

// modelSpec builds the single MODEL task spec.
func (s *Session) modelSpec(frags []*Fragment, fas []FunctionalArea) (taskSpec, error) {
	store := s.ds.Store
	prog := s.ds.Progs.Model
	seeds, err := modelSeeds(prog, store, frags, fas)
	if err != nil {
		return taskSpec{}, err
	}
	return taskSpec{
		key:   fmt.Sprintf("model-%s", store.Scene().Name),
		label: fmt.Sprintf("MODEL (%d functional areas)", len(fas)),
		group: "model",
		est:   float64(len(fas) + 1),
		mem:   taskMemEst(2*len(fas) + 1),
		prog:  prog,
		seeds: seeds,
	}, nil
}
