// Package spam reproduces SPAM, the rule-based aerial-image
// interpretation system the paper parallelizes: the four interpretation
// phases (RTF region-to-fragment classification, LCC local-consistency
// checking, FA functional-area aggregation, MODEL model generation),
// the airport and suburban knowledge bases, the OPS5 rule sets compiled
// from them, the external geometric computation, and the Level 1-4 task
// decompositions of Section 4.
package spam

import (
	"fmt"

	"spampsm/internal/scene"
)

// Relation names the spatial predicates of the constraint knowledge.
const (
	RelIntersects  = "intersects"
	RelAdjacent    = "adjacent-to"
	RelNear        = "near"
	RelParallel    = "parallel-to"
	RelLeadsTo     = "leads-to"
	RelContainedIn = "contained-in"
	RelAligned     = "aligned-with"
)

// Constraint is one piece of spatial consistency knowledge: fragments
// of class Subject are checked for Relation against fragments of class
// Object. Eps is the relation's tolerance in scene units; Radius is the
// candidate search radius used when assembling a task's partner set.
type Constraint struct {
	ID       string
	Subject  scene.Kind
	Relation string
	Object   scene.Kind
	Eps      float64
	Radius   float64
}

// Evidence is one RTF classification rule: attribute ranges that
// support interpreting a region as Class with the given confidence.
// Zero-valued bounds mean "no test". Tier names the strength of the
// evidence; each (class, tier) pair becomes one generated production.
type Evidence struct {
	Class      scene.Kind
	Tier       string
	MinElong   float64
	MaxElong   float64
	MinArea    float64
	MaxArea    float64
	MinInt     float64
	MaxInt     float64
	MaxTexture float64
	MinCompact float64
	Confidence int // 0..100
}

// FASpec describes one functional-area type: which fragment class
// seeds it, which classes join as members, and which classes the
// context predicts inside it (the paper's context-driven prediction).
type FASpec struct {
	Type     string
	Seed     scene.Kind
	Members  []scene.Kind
	Predicts []scene.Kind
}

// KB is a task-domain knowledge base.
type KB struct {
	Domain      scene.Domain
	Classes     []scene.Kind
	Constraints []Constraint
	Evidence    []Evidence
	FAs         []FASpec
}

// ConstraintsFor returns the constraints whose subject is the class.
func (kb *KB) ConstraintsFor(class scene.Kind) []Constraint {
	var out []Constraint
	for _, c := range kb.Constraints {
		if c.Subject == class {
			out = append(out, c)
		}
	}
	return out
}

// Constraint returns the constraint with the given ID, or nil.
func (kb *KB) Constraint(id string) *Constraint {
	for i := range kb.Constraints {
		if kb.Constraints[i].ID == id {
			return &kb.Constraints[i]
		}
	}
	return nil
}

// AirportKB builds the airport-domain knowledge base: the nine scene
// classes, ~30 spatial constraints ("runways intersect taxiways",
// "terminal buildings are adjacent to parking aprons", "access roads
// lead to terminal buildings", ...), three evidence tiers per class for
// RTF, and the functional-area specifications.
func AirportKB() *KB {
	kb := &KB{
		Domain: scene.Airport,
		Classes: []scene.Kind{
			scene.Runway, scene.Taxiway, scene.Terminal, scene.Apron,
			scene.Hangar, scene.Grass, scene.Tarmac, scene.Road, scene.Lot,
		},
	}
	add := func(subject scene.Kind, rel string, object scene.Kind, eps, radius float64) {
		id := fmt.Sprintf("c%d-%s", len(kb.Constraints)+1, rel)
		kb.Constraints = append(kb.Constraints, Constraint{
			ID: id, Subject: subject, Relation: rel, Object: object, Eps: eps, Radius: radius,
		})
	}
	// Runway constraints.
	add(scene.Runway, RelIntersects, scene.Taxiway, 0, 1200)
	add(scene.Runway, RelParallel, scene.Runway, 0.12, 9000)
	add(scene.Runway, RelNear, scene.Grass, 900, 3000)
	add(scene.Runway, RelAligned, scene.Runway, 250, 10000)
	// Taxiway constraints.
	add(scene.Taxiway, RelIntersects, scene.Runway, 0, 1200)
	add(scene.Taxiway, RelNear, scene.Tarmac, 700, 2400)
	add(scene.Taxiway, RelIntersects, scene.Taxiway, 0, 1400)
	// Terminal constraints.
	add(scene.Terminal, RelAdjacent, scene.Apron, 260, 1600)
	add(scene.Terminal, RelLeadsTo, scene.Road, 600, 2400)
	add(scene.Terminal, RelNear, scene.Lot, 900, 3000)
	// Apron constraints.
	add(scene.Apron, RelAdjacent, scene.Terminal, 260, 1600)
	add(scene.Apron, RelNear, scene.Hangar, 900, 3000)
	add(scene.Apron, RelNear, scene.Taxiway, 1200, 3600)
	// Hangar constraints.
	add(scene.Hangar, RelNear, scene.Apron, 900, 3000)
	add(scene.Hangar, RelNear, scene.Tarmac, 900, 2800)
	add(scene.Hangar, RelNear, scene.Hangar, 700, 2400)
	// Grass constraints.
	add(scene.Grass, RelNear, scene.Runway, 900, 3000)
	add(scene.Grass, RelNear, scene.Grass, 900, 2800)
	// Tarmac constraints.
	add(scene.Tarmac, RelNear, scene.Taxiway, 700, 2400)
	add(scene.Tarmac, RelNear, scene.Hangar, 900, 2800)
	// Access-road constraints.
	add(scene.Road, RelLeadsTo, scene.Terminal, 600, 2400)
	add(scene.Road, RelAdjacent, scene.Lot, 220, 1600)
	add(scene.Road, RelIntersects, scene.Road, 0, 2000)
	// Parking-lot constraints.
	add(scene.Lot, RelAdjacent, scene.Road, 220, 1600)
	add(scene.Lot, RelNear, scene.Terminal, 900, 3000)
	add(scene.Lot, RelNear, scene.Lot, 600, 2400)

	kb.Evidence = airportEvidence()
	kb.FAs = []FASpec{
		{Type: "runway-functional-area", Seed: scene.Runway,
			Members:  []scene.Kind{scene.Taxiway, scene.Grass},
			Predicts: []scene.Kind{scene.Grass, scene.Tarmac}},
		{Type: "terminal-functional-area", Seed: scene.Terminal,
			Members:  []scene.Kind{scene.Apron, scene.Road, scene.Lot},
			Predicts: []scene.Kind{scene.Lot}},
		{Type: "hangar-functional-area", Seed: scene.Hangar,
			Members:  []scene.Kind{scene.Tarmac, scene.Apron},
			Predicts: []scene.Kind{scene.Tarmac}},
	}
	return kb
}

func airportEvidence() []Evidence {
	var ev []Evidence
	// Segmentation noise is busy (texture ≈ 0.7); man-made and grass
	// surfaces are smoother. Every evidence rule carries a texture
	// ceiling so that noise blobs stay unclassified until a
	// functional-area context predicts an interpretation for them (the
	// FA→LCC re-entry path).
	add := func(e Evidence) {
		if e.MaxTexture == 0 {
			e.MaxTexture = 0.62
		}
		ev = append(ev, e)
	}
	// Runway: very elongated, bright, large.
	add(Evidence{Class: scene.Runway, Tier: "strong", MinElong: 9, MinArea: 80000, MinInt: 170, MaxTexture: 0.25, Confidence: 90})
	add(Evidence{Class: scene.Runway, Tier: "medium", MinElong: 7, MinArea: 40000, MinInt: 150, Confidence: 65})
	add(Evidence{Class: scene.Runway, Tier: "weak", MinElong: 6, MinInt: 140, Confidence: 40})
	// Taxiway: elongated, narrower, slightly darker than runway.
	add(Evidence{Class: scene.Taxiway, Tier: "strong", MinElong: 8, MaxArea: 70000, MinInt: 150, MaxInt: 200, MaxTexture: 0.3, Confidence: 85})
	add(Evidence{Class: scene.Taxiway, Tier: "medium", MinElong: 6, MaxArea: 90000, MinInt: 140, Confidence: 60})
	add(Evidence{Class: scene.Taxiway, Tier: "weak", MinElong: 5, MinInt: 130, MaxInt: 210, Confidence: 35})
	// Terminal: compact, mid-dark, moderate area.
	add(Evidence{Class: scene.Terminal, Tier: "strong", MaxElong: 3.5, MinArea: 15000, MinInt: 95, MaxInt: 133, MinCompact: 0.4, Confidence: 85})
	add(Evidence{Class: scene.Terminal, Tier: "medium", MaxElong: 4.5, MinArea: 9000, MinInt: 90, MaxInt: 140, Confidence: 60})
	add(Evidence{Class: scene.Terminal, Tier: "weak", MaxElong: 5.5, MinArea: 6000, MaxInt: 148, Confidence: 35})
	// Apron: large compact bright-ish.
	add(Evidence{Class: scene.Apron, Tier: "strong", MaxElong: 4, MinArea: 30000, MinInt: 125, MaxInt: 156, Confidence: 80})
	add(Evidence{Class: scene.Apron, Tier: "medium", MaxElong: 5, MinArea: 18000, MinInt: 115, MaxInt: 160, Confidence: 55})
	// Hangar: compact, dark, medium.
	add(Evidence{Class: scene.Hangar, Tier: "strong", MaxElong: 3, MinArea: 4000, MaxArea: 30000, MinInt: 85, MaxInt: 135, Confidence: 80})
	add(Evidence{Class: scene.Hangar, Tier: "medium", MaxElong: 4, MinArea: 2500, MaxInt: 145, Confidence: 50})
	// Grass: dark, textured, blobby.
	add(Evidence{Class: scene.Grass, Tier: "strong", MaxElong: 4, MinArea: 20000, MaxInt: 100, Confidence: 85})
	add(Evidence{Class: scene.Grass, Tier: "medium", MaxElong: 6, MaxInt: 110, Confidence: 55})
	// Tarmac: mid-bright blobs.
	add(Evidence{Class: scene.Tarmac, Tier: "strong", MaxElong: 4, MinArea: 8000, MinInt: 150, MaxInt: 185, MaxTexture: 0.3, Confidence: 75})
	add(Evidence{Class: scene.Tarmac, Tier: "medium", MaxElong: 5, MinInt: 146, MaxInt: 195, Confidence: 45})
	// Road: thin, long, mid intensity.
	add(Evidence{Class: scene.Road, Tier: "strong", MinElong: 10, MaxArea: 30000, MinInt: 120, MaxInt: 170, Confidence: 80})
	add(Evidence{Class: scene.Road, Tier: "medium", MinElong: 7, MaxArea: 40000, MinInt: 110, Confidence: 50})
	// Lot: compact mid region near scene edge.
	add(Evidence{Class: scene.Lot, Tier: "strong", MaxElong: 3.5, MinArea: 8000, MaxArea: 60000, MinInt: 124, MaxInt: 160, Confidence: 70})
	add(Evidence{Class: scene.Lot, Tier: "medium", MaxElong: 4.5, MinArea: 5000, MinInt: 118, MaxInt: 170, Confidence: 45})
	return ev
}

// SuburbanKB builds the suburban-housing knowledge base, SPAM's second
// task area.
func SuburbanKB() *KB {
	kb := &KB{
		Domain:  scene.Suburban,
		Classes: []scene.Kind{scene.House, scene.Driveway, scene.Street, scene.Yard},
	}
	add := func(subject scene.Kind, rel string, object scene.Kind, eps, radius float64) {
		id := fmt.Sprintf("s%d-%s", len(kb.Constraints)+1, rel)
		kb.Constraints = append(kb.Constraints, Constraint{
			ID: id, Subject: subject, Relation: rel, Object: object, Eps: eps, Radius: radius,
		})
	}
	add(scene.House, RelAdjacent, scene.Driveway, 60, 250)
	add(scene.House, RelNear, scene.Street, 400, 700)
	add(scene.House, RelNear, scene.Yard, 200, 450)
	add(scene.Driveway, RelAdjacent, scene.House, 60, 250)
	add(scene.Driveway, RelAdjacent, scene.Street, 60, 250)
	add(scene.Street, RelParallel, scene.Street, 0.15, 2500)
	add(scene.Street, RelAdjacent, scene.Driveway, 60, 400)
	add(scene.Yard, RelNear, scene.House, 200, 450)

	kb.Evidence = []Evidence{
		{Class: scene.House, Tier: "strong", MaxElong: 3, MinArea: 2000, MaxArea: 12000, MinInt: 95, MaxInt: 140, Confidence: 85},
		{Class: scene.House, Tier: "medium", MaxElong: 4, MinArea: 1200, MaxInt: 150, Confidence: 55},
		{Class: scene.Driveway, Tier: "strong", MinElong: 6, MaxArea: 6000, MinInt: 125, MaxInt: 165, Confidence: 80},
		{Class: scene.Driveway, Tier: "medium", MinElong: 4, MaxArea: 9000, MinInt: 115, Confidence: 50},
		{Class: scene.Street, Tier: "strong", MinElong: 12, MinArea: 8000, MinInt: 130, MaxInt: 175, Confidence: 85},
		{Class: scene.Street, Tier: "medium", MinElong: 8, MinInt: 120, Confidence: 55},
		{Class: scene.Yard, Tier: "strong", MaxElong: 4, MaxInt: 100, Confidence: 80},
		{Class: scene.Yard, Tier: "medium", MaxElong: 6, MaxInt: 115, Confidence: 50},
	}
	kb.FAs = []FASpec{
		{Type: "house-group", Seed: scene.House,
			Members:  []scene.Kind{scene.Driveway, scene.Yard},
			Predicts: []scene.Kind{scene.Yard}},
		{Type: "street-block", Seed: scene.Street,
			Members:  []scene.Kind{scene.Driveway, scene.House},
			Predicts: []scene.Kind{scene.Driveway}},
	}
	return kb
}
