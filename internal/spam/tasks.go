package spam

import (
	"fmt"
	"sort"
	"sync/atomic"

	"spampsm/internal/ops5"
	"spampsm/internal/rete"
	"spampsm/internal/scene"
	"spampsm/internal/symtab"
	"spampsm/internal/tlp"
	"spampsm/internal/wm"
)

// Level is the LCC decomposition level of Section 4: Level 4 = one
// task per object class, Level 3 = per object, Level 2 = per
// (object, constraint), Level 1 = per (object, constraint, component).
type Level int

// Decomposition levels.
const (
	Level1 Level = 1
	Level2 Level = 2
	Level3 Level = 3
	Level4 Level = 4
)

// sym shortens symbol construction in WM assembly.
func sym(s string) symtab.Value { return symtab.Sym(s) }

// taskMemEst models a task's peak footprint from the number of WMEs
// it is expected to hold — seeds plus produced hypotheses — charging
// each a nominal 8-slot WME plus one beta-token allowance, in the
// same simulated-byte units as ops5.MemStats.PeakBytes. The estimate
// feeds the schedulers (tlp.Task.MemEst) at queue-build time, before
// any engine exists; the measured PeakBytes replaces it wherever a
// cost log is available (machine.Specs).
func taskMemEst(wmes int) float64 {
	return float64(wmes) * (wm.WMEBytes(8) + rete.TokenBytes)
}

// naiveMatch selects the unindexed reference matcher for every engine
// the package builds (see UseNaiveMatch).
var naiveMatch atomic.Bool

// UseNaiveMatch switches all subsequently built task engines between
// the default equality-indexed Rete matcher (false) and the unindexed
// reference matcher (true). The two are observably identical — the
// differential oracle proves byte-identical Counters and firing
// sequences on the full SPAM rule set — so the toggle exists for that
// oracle and for benchmarking the indexed matcher's wall-clock win.
// It is process-global because task builders capture engine
// construction in closures that run on worker pools.
func UseNaiveMatch(on bool) { naiveMatch.Store(on) }

// freshCompile forces every engine the package builds to bypass the
// Program's compiled-variant cache (see UseFreshCompile).
var freshCompile atomic.Bool

// UseFreshCompile switches all subsequently built task engines between
// template instantiation from the Program's shared compile cache (the
// default) and a private fresh compilation per engine. The two are
// observably identical — the full-SPAM differential oracle proves
// byte-identical phase results, firings and instruction counts — so
// the toggle exists for that oracle; fresh compilation is strictly
// slower. Process-global for the same reason as UseNaiveMatch.
func UseFreshCompile(on bool) { freshCompile.Store(on) }

// unbatchedSeed forces every engine the package builds onto the
// per-WME seed-assertion path (see UseUnbatchedSeed).
var unbatchedSeed atomic.Bool

// UseUnbatchedSeed switches all subsequently built task engines between
// batched seed distribution with memoized alpha routing (the default)
// and the reference per-WME Assert path. The two are observably
// identical — the full-SPAM differential oracle proves byte-identical
// phase results, firings and instruction counts — so the toggle exists
// for that oracle and for benchmarking the batched path's wall-clock
// win. Process-global for the same reason as UseNaiveMatch.
func UseUnbatchedSeed(on bool) { unbatchedSeed.Store(on) }

// uncachedGeo selects the reference geometry path everywhere the
// package would otherwise use cached or indexed spatial state (see
// UseUncachedGeo).
var uncachedGeo atomic.Bool

// UseUncachedGeo switches subsequent geometry work between the default
// fast path — the RegionStore's spatial-predicate memo, derived
// per-region geometry in relation evaluation, and the uniform-grid
// partner index — and the reference path that re-evaluates every
// predicate per call with per-call Polygon methods and scans all
// fragments per partner search. The two are observably identical —
// the full-SPAM differential oracle proves byte-identical phase
// results, firings, instruction counts and consistency pairs — so the
// toggle exists for that oracle and for benchmarking. Combine with
// geom.UseExactOnly to reproduce the pre-fast-path kernels exactly.
// Process-global for the same reason as UseNaiveMatch.
func UseUncachedGeo(on bool) { uncachedGeo.Store(on) }

// engineOpts builds the engine options for a task.
func engineOpts(capture bool) []ops5.Option {
	var opts []ops5.Option
	if capture {
		opts = append(opts, ops5.WithCapture())
	}
	if naiveMatch.Load() {
		opts = append(opts, ops5.WithNaiveMatch())
	}
	if freshCompile.Load() {
		opts = append(opts, ops5.WithFreshCompile())
	}
	if unbatchedSeed.Load() {
		opts = append(opts, ops5.WithPerWMEAssert())
	}
	return opts
}

// newTaskEngine constructs one task engine, threading the worker's
// allocation scratch (nil outside DropEngines pools) into the engine's
// free lists.
func newTaskEngine(prog *ops5.Program, capture bool, s *ops5.Scratch) (*ops5.Engine, error) {
	opts := engineOpts(capture)
	if s != nil {
		opts = append(opts, ops5.WithScratch(s))
	}
	return ops5.NewEngine(prog, opts...)
}

// seedSet accumulates a task's seed working memory in assertion order;
// the builder hands the whole set to Engine.AssertBatch at once.
// Fragment rows — the WMEs that recur across overlapping tasks — go
// through the RegionStore's shared-seed cache, so a fragment's value
// vector and routing digest are computed once per scene, not once per
// task.
type seedSet struct {
	prog  *ops5.Program
	store *RegionStore
	seeds []ops5.Seed
}

// add appends one plain (task-local) seed row.
func (ss *seedSet) add(class string, sets map[string]symtab.Value) error {
	sc, err := ss.prog.SeedClass(class)
	if err != nil {
		return err
	}
	s, err := sc.Seed(sets)
	if err != nil {
		return err
	}
	ss.seeds = append(ss.seeds, s)
	return nil
}

// addFragment appends a fragment hypothesis row, shared through the
// scene's seed cache.
func (ss *seedSet) addFragment(f *Fragment) error {
	sc, err := ss.prog.SeedClass("fragment")
	if err != nil {
		return err
	}
	s, err := ss.store.FragmentSeed(sc, f)
	if err != nil {
		return err
	}
	ss.seeds = append(ss.seeds, s)
	return nil
}

// ---------------------------------------------------------------------------
// RTF phase tasks

// BuildRTFTasks decomposes the RTF phase: each task classifies one
// batch of regions. The decomposition yields the paper's ~60-100 tasks
// per dataset at roughly Level-2 granularity.
func BuildRTFTasks(kb *KB, store *RegionStore, prog *ops5.Program, batchSize int, capture bool) []*tlp.Task {
	if batchSize < 1 {
		batchSize = 3
	}
	regions := store.Scene().Regions
	var tasks []*tlp.Task
	for start := 0; start < len(regions); start += batchSize {
		end := start + batchSize
		if end > len(regions) {
			end = len(regions)
		}
		batch := regions[start:end]
		batchID := start / batchSize
		batchCopy := append([]*scene.Region(nil), batch...)
		build := func(s *ops5.Scratch) (*ops5.Engine, error) {
			e, err := newTaskEngine(prog, capture, s)
			if err != nil {
				return nil, err
			}
			store.Register(e)
			seeds, err := rtfSeeds(prog, store, batchID, batchCopy)
			if err != nil {
				return nil, err
			}
			if err := e.AssertBatch(seeds); err != nil {
				return nil, err
			}
			return e, nil
		}
		tasks = append(tasks, &tlp.Task{
			ID:        fmt.Sprintf("rtf-%s-%d", store.Scene().Name, batchID),
			Label:     fmt.Sprintf("RTF batch %d (%d regions)", batchID, len(batchCopy)),
			Group:     "rtf",
			EstSize:   float64(len(batchCopy)),
			MemEst:    taskMemEst(1 + 2*len(batchCopy)),
			Build:     func() (*ops5.Engine, error) { return build(nil) },
			BuildWith: build,
			Wire: func() (*tlp.WireSpec, error) {
				seeds, err := rtfSeeds(prog, store, batchID, batchCopy)
				if err != nil {
					return nil, err
				}
				return &tlp.WireSpec{
					Dataset: store.Scene().Name, Phase: "rtf",
					Seeds: seeds, Extract: []string{"fragment"},
				}, nil
			},
		})
	}
	return tasks
}

// rtfSeeds assembles one RTF task's seed working memory — the task
// control row plus a measured-region row per batch member, in
// assertion order. Shared between the classic task builder and the
// incremental session, so both load byte-identical seed sets.
func rtfSeeds(prog *ops5.Program, store *RegionStore, batchID int, regions []*scene.Region) ([]ops5.Seed, error) {
	ss := seedSet{prog: prog, store: store}
	if err := ss.add("rtf-task", map[string]symtab.Value{
		"batch": symtab.Int(int64(batchID)), "status": sym("active"),
	}); err != nil {
		return nil, err
	}
	for _, r := range regions {
		area, elong, compact, intensity, texture := store.MeasurementsOf(r)
		if err := ss.add("region", map[string]symtab.Value{
			"id":        symtab.Int(int64(r.ID)),
			"batch":     symtab.Int(int64(batchID)),
			"area":      symtab.Float(area),
			"elong":     symtab.Float(elong),
			"compact":   symtab.Float(compact),
			"intensity": symtab.Float(intensity),
			"texture":   symtab.Float(texture),
			"status":    sym("measured"),
		}); err != nil {
			return nil, err
		}
	}
	return ss.seeds, nil
}

// ExtractFragments collects the fragment hypotheses produced by RTF
// task results, ordered by fragment ID.
func ExtractFragments(results []*tlp.Result) []*Fragment {
	var frags []*Fragment
	for _, r := range results {
		if r == nil || r.Err != nil {
			continue
		}
		for _, w := range r.WMEs("fragment") {
			frags = append(frags, &Fragment{
				ID:       int(w.Get("id").IntVal()),
				RegionID: int(w.Get("region").IntVal()),
				Type:     scene.Kind(w.Get("type").SymVal()),
				Conf:     int(w.Get("conf").IntVal()),
			})
		}
	}
	sort.Slice(frags, func(i, j int) bool { return frags[i].ID < frags[j].ID })
	return frags
}

// ---------------------------------------------------------------------------
// LCC phase tasks

// lccUnit is one (focal, constraint-subset) work assignment.
type lccUnit struct {
	focal    *Fragment
	cid      string // "" means all constraints of the class
	partners map[string][]*Fragment
	expected int
}

// partnersFor computes the candidate partner set of one constraint,
// through the grid index when one was built for the pool.
func partnersFor(store *RegionStore, ix *fragIndex, focal *Fragment, c Constraint, all []*Fragment) []*Fragment {
	if ix != nil {
		return ix.query(focal, c.Object, c.Radius)
	}
	return NearbyFragments(store, focal, c.Object, all, c.Radius)
}

// unitsForLevel enumerates the work units of a decomposition level.
// focals are the objects to check; all is the candidate partner pool,
// indexed once here so level enumeration stops scanning every
// fragment per constraint.
func unitsForLevel(kb *KB, store *RegionStore, focals, all []*Fragment, level Level) []lccUnit {
	ix := buildFragIndex(store, all)
	return unitsWith(kb, focals, level, func(f *Fragment, c Constraint) []*Fragment {
		return partnersFor(store, ix, f, c, all)
	})
}

// unitsWith enumerates the work units of a decomposition level with a
// caller-supplied partner query — the transient per-build grid above,
// or a Session's persistent live grid.
func unitsWith(kb *KB, focals []*Fragment, level Level, query func(*Fragment, Constraint) []*Fragment) []lccUnit {
	var units []lccUnit
	for _, f := range focals {
		cons := kb.ConstraintsFor(f.Type)
		if len(cons) == 0 {
			continue
		}
		switch level {
		case Level3, Level4:
			u := lccUnit{focal: f, cid: "all", partners: map[string][]*Fragment{}}
			for _, c := range cons {
				ps := query(f, c)
				u.partners[c.ID] = ps
				u.expected += len(ps)
			}
			units = append(units, u)
		case Level2:
			for _, c := range cons {
				ps := query(f, c)
				units = append(units, lccUnit{
					focal: f, cid: c.ID,
					partners: map[string][]*Fragment{c.ID: ps},
					expected: len(ps),
				})
			}
		case Level1:
			for _, c := range cons {
				for _, p := range query(f, c) {
					units = append(units, lccUnit{
						focal: f, cid: c.ID,
						partners: map[string][]*Fragment{c.ID: {p}},
						expected: 1,
					})
				}
			}
		}
	}
	return units
}

// buildLCCEngine loads one engine with a set of work units (several
// units share an engine at Level 4).
func buildLCCEngine(kb *KB, store *RegionStore, prog *ops5.Program, units []lccUnit, capture bool, s *ops5.Scratch) (*ops5.Engine, error) {
	e, err := newTaskEngine(prog, capture, s)
	if err != nil {
		return nil, err
	}
	store.Register(e)
	seeds, err := lccSeeds(prog, store, units)
	if err != nil {
		return nil, err
	}
	if err := e.AssertBatch(seeds); err != nil {
		return nil, err
	}
	return e, nil
}

// lccSeeds assembles the seed working memory of a set of LCC work
// units, in assertion order: per unit, the (deduplicated) focal and
// partner fragments with their scope triples, then the support and
// task control rows. Shared between buildLCCEngine and the session.
func lccSeeds(prog *ops5.Program, store *RegionStore, units []lccUnit) ([]ops5.Seed, error) {
	ss := seedSet{prog: prog, store: store}
	seen := map[int]bool{}
	addFrag := func(f *Fragment) error {
		if seen[f.ID] {
			return nil
		}
		seen[f.ID] = true
		return ss.addFragment(f)
	}
	for _, u := range units {
		if err := addFrag(u.focal); err != nil {
			return nil, err
		}
		// Deterministic constraint order: the scope rows' assertion order
		// must be stable run-to-run so the session's seed-signature diff
		// never sees a spurious change (map iteration order is not).
		cids := make([]string, 0, len(u.partners))
		for cid := range u.partners {
			cids = append(cids, cid)
		}
		sort.Strings(cids)
		for _, cid := range cids {
			for _, p := range u.partners[cid] {
				if err := addFrag(p); err != nil {
					return nil, err
				}
				// The scope WME makes the decomposition exact: a check
				// runs iff the control process put its (object,
				// constraint, partner) triple into the task's working
				// memory, so every level computes the same checks.
				if err := ss.add("scope", map[string]symtab.Value{
					"object":     symtab.Int(int64(u.focal.ID)),
					"constraint": sym(cid),
					"partner":    symtab.Int(int64(p.ID)),
				}); err != nil {
					return nil, err
				}
			}
		}
		if err := ss.add("support", map[string]symtab.Value{
			"object": symtab.Int(int64(u.focal.ID)),
			"count":  symtab.Int(0), "checked": symtab.Int(0),
		}); err != nil {
			return nil, err
		}
		if err := ss.add("lcc-task", map[string]symtab.Value{
			"object":   symtab.Int(int64(u.focal.ID)),
			"class":    sym(string(u.focal.Type)),
			"cid":      sym(u.cid),
			"expected": symtab.Int(int64(u.expected)),
			"status":   sym("active"),
		}); err != nil {
			return nil, err
		}
	}
	return ss.seeds, nil
}

// BuildLCCTasks decomposes the LCC phase at the chosen level. The
// same generated rule set serves every level: the task's scope is its
// working memory.
func BuildLCCTasks(kb *KB, store *RegionStore, prog *ops5.Program, frags []*Fragment, level Level, capture bool) []*tlp.Task {
	return BuildLCCTasksFor(kb, store, prog, frags, frags, level, capture)
}

// BuildLCCTasksFor decomposes LCC for a subset of focal objects against
// a larger partner pool — used by the FA→LCC re-entry, which re-checks
// only the newly predicted fragments.
func BuildLCCTasksFor(kb *KB, store *RegionStore, prog *ops5.Program, focals, all []*Fragment, level Level, capture bool) []*tlp.Task {
	units := unitsForLevel(kb, store, focals, all, level)
	name := store.Scene().Name
	if level == Level4 {
		// One task per object class. The scope WMEs keep each focal
		// object's checks identical to its Level-3 task even though the
		// class's objects share one working memory.
		byClass := map[scene.Kind][]lccUnit{}
		for _, u := range units {
			byClass[u.focal.Type] = append(byClass[u.focal.Type], u)
		}
		var classes []scene.Kind
		for k := range byClass {
			classes = append(classes, k)
		}
		sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
		var tasks []*tlp.Task
		for _, k := range classes {
			group := byClass[k]
			est := 0
			for _, u := range group {
				est += u.expected
			}
			groupCopy := group
			build := func(s *ops5.Scratch) (*ops5.Engine, error) {
				return buildLCCEngine(kb, store, prog, groupCopy, capture, s)
			}
			tasks = append(tasks, &tlp.Task{
				ID:        fmt.Sprintf("lcc4-%s-%s", name, k),
				Label:     fmt.Sprintf("LCC L4 class %s (%d objects)", k, len(groupCopy)),
				Group:     string(k),
				EstSize:   float64(est),
				MemEst:    taskMemEst(2*est + 3*len(groupCopy)),
				Build:     func() (*ops5.Engine, error) { return build(nil) },
				BuildWith: build,
				Wire:      lccWire(prog, store, name, groupCopy),
			})
		}
		return tasks
	}
	var tasks []*tlp.Task
	for i, u := range units {
		uc := u
		build := func(s *ops5.Scratch) (*ops5.Engine, error) {
			return buildLCCEngine(kb, store, prog, []lccUnit{uc}, capture, s)
		}
		tasks = append(tasks, &tlp.Task{
			ID:        fmt.Sprintf("lcc%d-%s-%d", level, name, i),
			Label:     fmt.Sprintf("LCC L%d object %d %s (%d checks)", level, uc.focal.ID, uc.cid, uc.expected),
			Group:     string(uc.focal.Type),
			EstSize:   float64(uc.expected),
			MemEst:    taskMemEst(2*uc.expected + 3),
			Build:     func() (*ops5.Engine, error) { return build(nil) },
			BuildWith: build,
			Wire:      lccWire(prog, store, name, []lccUnit{uc}),
		})
	}
	return tasks
}

// lccWire builds the lazy wire description of one LCC task: the same
// seed set its Build closure asserts, shipped for remote execution.
func lccWire(prog *ops5.Program, store *RegionStore, name string, units []lccUnit) func() (*tlp.WireSpec, error) {
	return func() (*tlp.WireSpec, error) {
		seeds, err := lccSeeds(prog, store, units)
		if err != nil {
			return nil, err
		}
		return &tlp.WireSpec{
			Dataset: name, Phase: "lcc",
			Seeds: seeds, Extract: []string{"check", "lcc-result"},
		}, nil
	}
}

// ConsistentPair is one consistency record produced by LCC: focal
// object f and partner p satisfied the constraint's relation.
type ConsistentPair struct {
	Object   int
	Partner  int
	Relation string
}

// LCCOutcome is the per-object LCC verdict.
type LCCOutcome struct {
	Object  int
	Support int
	Checked int
	Status  string // consistent | weak
}

// ExtractLCC collects the consistency pairs and per-object outcomes
// from LCC task results.
func ExtractLCC(results []*tlp.Result) ([]ConsistentPair, []LCCOutcome) {
	var pairs []ConsistentPair
	var outs []LCCOutcome
	for _, r := range results {
		if r == nil || r.Err != nil {
			continue
		}
		for _, w := range r.WMEs("check") {
			if w.Get("result").SymVal() == "t" {
				pairs = append(pairs, ConsistentPair{
					Object:   int(w.Get("object").IntVal()),
					Partner:  int(w.Get("partner").IntVal()),
					Relation: w.Get("relation").SymVal(),
				})
			}
		}
		for _, w := range r.WMEs("lcc-result") {
			outs = append(outs, LCCOutcome{
				Object:  int(w.Get("object").IntVal()),
				Support: int(w.Get("support").IntVal()),
				Checked: int(w.Get("checked").IntVal()),
				Status:  w.Get("status").SymVal(),
			})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Object != pairs[j].Object {
			return pairs[i].Object < pairs[j].Object
		}
		return pairs[i].Partner < pairs[j].Partner
	})
	sort.Slice(outs, func(i, j int) bool { return outs[i].Object < outs[j].Object })
	return pairs, outs
}

// ---------------------------------------------------------------------------
// FA phase tasks

// FunctionalArea is one aggregated context.
type FunctionalArea struct {
	Seed     int
	Type     string
	NMembers int
	Status   string
}

// Prediction is one context-driven sub-area prediction.
type Prediction struct {
	FA         int
	Kind       scene.Kind
	Candidates int
}

// BuildFATasks decomposes the FA phase: one task per functional-area
// seed (a consistent fragment of a seed class).
func BuildFATasks(kb *KB, store *RegionStore, prog *ops5.Program, frags []*Fragment,
	pairs []ConsistentPair, outcomes []LCCOutcome, capture bool) []*tlp.Task {

	byID := map[int]*Fragment{}
	for _, f := range frags {
		byID[f.ID] = f
	}
	consistent := map[int]bool{}
	for _, o := range outcomes {
		if o.Status == "consistent" {
			consistent[o.Object] = true
		}
	}
	pairsByObject := map[int][]ConsistentPair{}
	for _, p := range pairs {
		pairsByObject[p.Object] = append(pairsByObject[p.Object], p)
	}

	var tasks []*tlp.Task
	for _, spec := range kb.FAs {
		memberKinds := map[scene.Kind]bool{}
		for _, m := range spec.Members {
			memberKinds[m] = true
		}
		for _, f := range frags {
			if f.Type != spec.Seed || !consistent[f.ID] {
				continue
			}
			// Collect the consistent member partners and the expected
			// member count (distinct partners of member classes).
			var members []*Fragment
			var memberPairs []ConsistentPair
			seen := map[int]bool{}
			for _, p := range pairsByObject[f.ID] {
				pf := byID[p.Partner]
				if pf == nil || !memberKinds[pf.Type] {
					continue
				}
				memberPairs = append(memberPairs, p)
				if !seen[pf.ID] {
					seen[pf.ID] = true
					members = append(members, pf)
				}
			}
			seed := f
			specCopy := spec
			membersCopy := members
			pairsCopy := memberPairs
			expected := len(members)
			build := func(s *ops5.Scratch) (*ops5.Engine, error) {
				e, err := newTaskEngine(prog, capture, s)
				if err != nil {
					return nil, err
				}
				store.Register(e)
				seeds, err := faSeeds(prog, store, seed, membersCopy, pairsCopy, specCopy.Type)
				if err != nil {
					return nil, err
				}
				if err := e.AssertBatch(seeds); err != nil {
					return nil, err
				}
				return e, nil
			}
			tasks = append(tasks, &tlp.Task{
				ID:        fmt.Sprintf("fa-%s-%s-%d", store.Scene().Name, spec.Type, f.ID),
				Label:     fmt.Sprintf("FA %s seed %d (%d members)", spec.Type, f.ID, expected),
				Group:     "fa-" + string(spec.Type),
				EstSize:   float64(expected + 1),
				MemEst:    taskMemEst(expected + len(pairsCopy) + 2),
				Build:     func() (*ops5.Engine, error) { return build(nil) },
				BuildWith: build,
				Wire: func() (*tlp.WireSpec, error) {
					seeds, err := faSeeds(prog, store, seed, membersCopy, pairsCopy, specCopy.Type)
					if err != nil {
						return nil, err
					}
					return &tlp.WireSpec{
						Dataset: store.Scene().Name, Phase: "fa",
						Seeds: seeds, Extract: []string{"fa", "prediction"},
					}, nil
				},
			})
		}
	}
	return tasks
}

// faSeeds assembles one FA task's seed working memory: the seed
// fragment, its member fragments, the consistency rows supporting the
// aggregation, and the task control row, in assertion order. Shared
// between the classic task builder and the incremental session.
func faSeeds(prog *ops5.Program, store *RegionStore, seed *Fragment,
	members []*Fragment, pairs []ConsistentPair, faType string) ([]ops5.Seed, error) {

	ss := seedSet{prog: prog, store: store}
	if err := ss.addFragment(seed); err != nil {
		return nil, err
	}
	for _, m := range members {
		if err := ss.addFragment(m); err != nil {
			return nil, err
		}
	}
	for _, p := range pairs {
		if err := ss.add("consistency", map[string]symtab.Value{
			"object":   symtab.Int(int64(p.Object)),
			"partner":  symtab.Int(int64(p.Partner)),
			"relation": sym(p.Relation),
			"result":   sym("t"),
		}); err != nil {
			return nil, err
		}
	}
	if err := ss.add("fa-task", map[string]symtab.Value{
		"seed":     symtab.Int(int64(seed.ID)),
		"fatype":   sym(faType),
		"expected": symtab.Int(int64(len(pairs))),
		"status":   sym("active"),
	}); err != nil {
		return nil, err
	}
	return ss.seeds, nil
}

// ExtractFA collects the closed functional areas and predictions.
func ExtractFA(results []*tlp.Result) ([]FunctionalArea, []Prediction) {
	var fas []FunctionalArea
	var preds []Prediction
	for _, r := range results {
		if r == nil || r.Err != nil {
			continue
		}
		for _, w := range r.WMEs("fa") {
			fas = append(fas, FunctionalArea{
				Seed:     int(w.Get("seed").IntVal()),
				Type:     w.Get("fatype").SymVal(),
				NMembers: int(w.Get("nmembers").IntVal()),
				Status:   w.Get("status").SymVal(),
			})
		}
		for _, w := range r.WMEs("prediction") {
			preds = append(preds, Prediction{
				FA:         int(w.Get("fa").IntVal()),
				Kind:       scene.Kind(w.Get("kind").SymVal()),
				Candidates: int(w.Get("candidates").IntVal()),
			})
		}
	}
	sort.Slice(fas, func(i, j int) bool { return fas[i].Seed < fas[j].Seed })
	sort.Slice(preds, func(i, j int) bool { return preds[i].FA < preds[j].FA })
	return fas, preds
}

// ---------------------------------------------------------------------------
// MODEL phase task

// Model is the final scene model.
type Model struct {
	Score int
	NFAs  int
}

// BuildModelTask builds the single MODEL-phase task over the closed
// functional areas.
func BuildModelTask(kb *KB, store *RegionStore, prog *ops5.Program,
	frags []*Fragment, fas []FunctionalArea, capture bool) *tlp.Task {

	fragsCopy := append([]*Fragment(nil), frags...)
	fasCopy := append([]FunctionalArea(nil), fas...)
	build := func(s *ops5.Scratch) (*ops5.Engine, error) {
		e, err := newTaskEngine(prog, capture, s)
		if err != nil {
			return nil, err
		}
		store.Register(e)
		seeds, err := modelSeeds(prog, store, fragsCopy, fasCopy)
		if err != nil {
			return nil, err
		}
		if err := e.AssertBatch(seeds); err != nil {
			return nil, err
		}
		return e, nil
	}
	return &tlp.Task{
		ID:        fmt.Sprintf("model-%s", store.Scene().Name),
		Label:     fmt.Sprintf("MODEL (%d functional areas)", len(fasCopy)),
		Group:     "model",
		EstSize:   float64(len(fasCopy) + 1),
		MemEst:    taskMemEst(2*len(fasCopy) + 1),
		Build:     func() (*ops5.Engine, error) { return build(nil) },
		BuildWith: build,
		Wire: func() (*tlp.WireSpec, error) {
			seeds, err := modelSeeds(prog, store, fragsCopy, fasCopy)
			if err != nil {
				return nil, err
			}
			return &tlp.WireSpec{
				Dataset: store.Scene().Name, Phase: "model",
				Seeds: seeds, Extract: []string{"model"},
			}, nil
		},
	}
}

// modelSeeds assembles the MODEL task's seed working memory: per
// closed functional area its (deduplicated) seed fragment and fa row,
// then the task control row, in assertion order. Shared between the
// classic task builder and the incremental session.
func modelSeeds(prog *ops5.Program, store *RegionStore, frags []*Fragment, fas []FunctionalArea) ([]ops5.Seed, error) {
	byID := map[int]*Fragment{}
	for _, f := range frags {
		byID[f.ID] = f
	}
	ss := seedSet{prog: prog, store: store}
	seen := map[int]bool{}
	for _, fa := range fas {
		if fa.Status != "closed" {
			continue
		}
		if f := byID[fa.Seed]; f != nil && !seen[f.ID] {
			seen[f.ID] = true
			if err := ss.addFragment(f); err != nil {
				return nil, err
			}
		}
		if err := ss.add("fa", map[string]symtab.Value{
			"id":       symtab.Int(int64(fa.Seed)),
			"seed":     symtab.Int(int64(fa.Seed)),
			"fatype":   sym(fa.Type),
			"nmembers": symtab.Int(int64(fa.NMembers)),
			"status":   sym("closed"),
		}); err != nil {
			return nil, err
		}
	}
	if err := ss.add("model-task", map[string]symtab.Value{
		"status": sym("active"),
	}); err != nil {
		return nil, err
	}
	return ss.seeds, nil
}

// ExtractModel returns the final model from the MODEL task result.
func ExtractModel(results []*tlp.Result) (Model, bool) {
	for _, r := range results {
		if r == nil || r.Err != nil {
			continue
		}
		for _, w := range r.WMEs("model") {
			if w.Get("status").SymVal() == "final" {
				return Model{
					Score: int(w.Get("score").IntVal()),
					NFAs:  int(w.Get("nfas").IntVal()),
				}, true
			}
		}
	}
	return Model{}, false
}
