package spam

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"spampsm/internal/geom"
	"spampsm/internal/ops5"
	"spampsm/internal/scene"
	"spampsm/internal/symtab"
)

// Cost model of the task-related geometric computation (simulated
// NS32332 instructions). In the original SPAM these operations ran over
// image regions in forked external processes (later C function calls);
// here they run over segmentation polygons, with simulated cost scaled
// to the C-ported baseline the paper measures against.
const (
	// CostGeoBase is the fixed cost of one spatial predicate evaluation.
	CostGeoBase = 20000
	// CostGeoPerVert is the per-vertex cost (both polygons' vertices
	// count). Datasets with more complex region outlines (DC) pay more
	// per check, which lowers their match fraction, as the paper's
	// per-dataset asymptotic limits show.
	CostGeoPerVert = 1800
	// CostMeasure is the cost of one RTF measurement/verification call.
	CostMeasure = 4000
	// CostPredict is the cost of one FA sub-area prediction: carving
	// candidate sub-regions out of a functional area's extent is the
	// most expensive geometric operation SPAM performs.
	CostPredict = 150000
	// CostStereo is the cost of one MODEL-phase stereo verification.
	CostStereo = 250000

	// faPredictRadius is the bbox expansion fa-predict-area scans for
	// sub-area candidates. Sessions replicate the scan when signing FA
	// tasks (Session.faNeighborhood), so the two must agree.
	faPredictRadius = 800
)

// Fragment is one scene-fragment interpretation hypothesis, the unit
// the LCC phase checks for consistency.
type Fragment struct {
	ID       int
	RegionID int
	Type     scene.Kind
	Conf     int // 0..100
}

// RegionStore resolves region IDs to geometry for the external
// functions, precomputes the per-region measurements asserted into RTF
// working memory, and caches the shared seed form of each fragment
// hypothesis (value vector + routing digest) scene-wide.
type RegionStore struct {
	scene *scene.Scene
	byID  map[int]*scene.Region

	// derived holds per-region geometry (bbox, centroid, bounding
	// radius, areas, major axis, edge vectors) computed once in
	// NewRegionStore. Every field is a pure function of the vertex
	// ring, bit-identical to on-the-fly recomputation, so the cache is
	// immutable and read without locking.
	derived map[int]*geom.Derived

	// Fragment-seed cache. Task builders run concurrently under
	// Pool.Prebuild, and unlike the rest of the store (immutable after
	// NewRegionStore) this map mutates at build time, so it is locked.
	seedMu    sync.RWMutex
	fragSeeds map[fragSeedKey]ops5.Seed

	// Spatial-predicate memo. Overlapping partner sets across ~1k task
	// engines and decomposition levels re-evaluate identical
	// (region, region, relation, eps) tests; the memo serves repeats
	// from one evaluation while geoCost is still charged per call, so
	// Counters and firing sequences are unchanged. Same lock
	// discipline as the fragment-seed cache. Disabled by
	// UseUncachedGeo for the differential oracle and baselines.
	//
	// The memo is bounded (geoCap entries, FIFO eviction) so a
	// long-lived serving session cannot grow it forever, and entries
	// are epoch-stamped: every memoised boolean records the epoch of
	// both regions at evaluation time, and ApplyDelta invalidates a
	// changed region's entries by bumping its epoch — O(1) per region,
	// no scan, no wholesale flush. Stale entries are overwritten in
	// place on the next evaluation or recycled by eviction.
	geoMu       sync.RWMutex
	geoMemo     map[geoKey]geoVal
	geoQueue    []geoKey // insertion order; head geoHead (FIFO eviction)
	geoHead     int
	geoCap      int
	regionEpoch map[int]uint32

	geoHits      atomic.Int64
	geoMisses    atomic.Int64
	geoEvictions atomic.Int64

	// epoch counts ApplyDelta calls (0 for a freshly built store).
	epoch int
}

// geoVal is one memoised predicate result, stamped with the epochs of
// both operand regions at evaluation time. A lookup whose stamps do
// not match the regions' current epochs is a miss: the geometry the
// boolean was computed over no longer exists.
type geoVal struct {
	ok     bool
	ea, eb uint32
}

// DefaultGeoMemoCap bounds the spatial-predicate memo. Sized an order
// of magnitude above the largest benchmark scene's working set, so
// eviction never perturbs the experiments while a long-lived server
// stays bounded.
const DefaultGeoMemoCap = 1 << 18

// GeoMemoStats is a snapshot of the predicate memo's occupancy and
// lifetime counters, surfaced through the serving layer's /stats.
type GeoMemoStats struct {
	Entries   int   `json:"entries"`
	Cap       int   `json:"cap"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// GeoStats returns the predicate memo's current statistics.
func (st *RegionStore) GeoStats() GeoMemoStats {
	st.geoMu.RLock()
	n := len(st.geoMemo)
	cap := st.geoCap
	st.geoMu.RUnlock()
	return GeoMemoStats{
		Entries:   n,
		Cap:       cap,
		Hits:      st.geoHits.Load(),
		Misses:    st.geoMisses.Load(),
		Evictions: st.geoEvictions.Load(),
	}
}

// SetGeoMemoCap overrides the predicate-memo entry cap (tests exercise
// eviction with small caps). Values below 1 restore the default.
func (st *RegionStore) SetGeoMemoCap(n int) {
	if n < 1 {
		n = DefaultGeoMemoCap
	}
	st.geoMu.Lock()
	st.geoCap = n
	st.geoMu.Unlock()
}

// geoKey identifies one spatial-predicate evaluation. For the
// symmetric relations the region pair is canonicalized (low ID first)
// so that cross-constraint mirror tests — runway intersects taxiway
// and taxiway intersects runway, say — share one entry.
type geoKey struct {
	a, b int
	rel  string
	eps  float64
}

// symmetricRel reports whether rel's boolean is invariant under
// operand swap. intersects, adjacent-to and near reduce to the same
// boundary-distance candidate set either way; parallel-to compares
// the two orientations symmetrically. leads-to, contained-in and
// aligned-with are directional and keep ordered keys.
func symmetricRel(rel string) bool {
	switch rel {
	case RelIntersects, RelAdjacent, RelNear, RelParallel:
		return true
	}
	return false
}

// fragSeedKey identifies a fragment's seed form. The SeedClass pointer
// keys the phase program: each phase declares its own fragment class,
// and seeds carry slot-ordered vectors that must match the asserting
// program's declaration.
type fragSeedKey struct {
	sc     *ops5.SeedClass
	id     int
	region int
	conf   int
	typ    scene.Kind
}

// NewRegionStore indexes a scene.
func NewRegionStore(s *scene.Scene) *RegionStore {
	st := &RegionStore{
		scene:       s,
		byID:        make(map[int]*scene.Region, len(s.Regions)),
		derived:     make(map[int]*geom.Derived, len(s.Regions)),
		fragSeeds:   map[fragSeedKey]ops5.Seed{},
		geoMemo:     map[geoKey]geoVal{},
		geoCap:      DefaultGeoMemoCap,
		regionEpoch: map[int]uint32{},
	}
	for _, r := range s.Regions {
		st.byID[r.ID] = r
		st.derived[r.ID] = geom.Derive(r.Poly)
	}
	return st
}

// Derived returns the precomputed geometry of a region, or nil.
func (st *RegionStore) Derived(id int) *geom.Derived { return st.derived[id] }

// FragmentSeed returns the shared seed form of a fragment hypothesis
// under the given class layout, computing the value vector and routing
// digest once per (program, fragment) and serving every later task of
// the scene from the cache. Safe for concurrent task builders.
func (st *RegionStore) FragmentSeed(sc *ops5.SeedClass, f *Fragment) (ops5.Seed, error) {
	key := fragSeedKey{sc: sc, id: f.ID, region: f.RegionID, conf: f.Conf, typ: f.Type}
	st.seedMu.RLock()
	s, ok := st.fragSeeds[key]
	st.seedMu.RUnlock()
	if ok {
		return s, nil
	}
	s, err := sc.SharedSeed(map[string]symtab.Value{
		"id":     symtab.Int(int64(f.ID)),
		"region": symtab.Int(int64(f.RegionID)),
		"type":   symtab.Sym(string(f.Type)),
		"conf":   symtab.Int(int64(f.Conf)),
		"status": symtab.Sym("hypothesized"),
	})
	if err != nil {
		return ops5.Seed{}, err
	}
	st.seedMu.Lock()
	if prev, ok := st.fragSeeds[key]; ok {
		s = prev // racing builders computed equal seeds; keep one vector
	} else {
		st.fragSeeds[key] = s
	}
	st.seedMu.Unlock()
	return s, nil
}

// Scene returns the underlying scene.
func (st *RegionStore) Scene() *scene.Scene { return st.scene }

// Get returns a region by ID, or nil.
func (st *RegionStore) Get(id int) *scene.Region { return st.byID[id] }

// geoCost returns the simulated cost of a predicate over two regions.
func geoCost(a, b *scene.Region) float64 {
	return CostGeoBase + CostGeoPerVert*float64(len(a.Poly)+len(b.Poly))
}

// Test evaluates a spatial relation between two regions. It returns
// the boolean result and the simulated instruction cost. The cost is
// charged per call regardless of whether the boolean is served from
// the predicate memo: the simulated machine performed the geometric
// computation either way, only the host skips the arithmetic.
func (st *RegionStore) Test(rel string, aID, bID int, eps float64) (bool, float64, error) {
	a, b := st.Get(aID), st.Get(bID)
	if a == nil || b == nil {
		return false, 0, fmt.Errorf("spam: unknown region %d or %d", aID, bID)
	}
	cost := geoCost(a, b)
	if rel == RelLeadsTo {
		// Compound relation: range plus axis alignment.
		cost *= 1.5
	}
	if uncachedGeo.Load() {
		ok, err := st.evalRelNaive(rel, a, b, eps)
		if err != nil {
			return false, 0, err
		}
		return ok, cost, nil
	}
	key := geoKey{a: aID, b: bID, rel: rel, eps: eps}
	if key.a > key.b && symmetricRel(rel) {
		key.a, key.b = key.b, key.a
	}
	st.geoMu.RLock()
	v, hit := st.geoMemo[key]
	ea, eb := st.regionEpoch[key.a], st.regionEpoch[key.b]
	st.geoMu.RUnlock()
	if hit && v.ea == ea && v.eb == eb {
		st.geoHits.Add(1)
		return v.ok, cost, nil
	}
	st.geoMisses.Add(1)
	ok, err := st.evalRel(rel, a, b, eps)
	if err != nil {
		return false, 0, err
	}
	st.geoMu.Lock()
	if _, present := st.geoMemo[key]; !present {
		// Inserting a fresh key: evict the oldest entry once the cap is
		// reached. Every live key has exactly one queue slot, so one pop
		// frees exactly one entry.
		if len(st.geoMemo) >= st.geoCap {
			old := st.geoQueue[st.geoHead]
			st.geoHead++
			delete(st.geoMemo, old)
			st.geoEvictions.Add(1)
			if st.geoHead >= 1024 && st.geoHead*2 >= len(st.geoQueue) {
				st.geoQueue = append(st.geoQueue[:0], st.geoQueue[st.geoHead:]...)
				st.geoHead = 0
			}
		}
		st.geoQueue = append(st.geoQueue, key)
	}
	// Re-read the epochs under the write lock: a concurrent ApplyDelta
	// cannot run during task execution, but the stamps must match the
	// epochs the geometry was read under.
	st.geoMemo[key] = geoVal{ok: ok, ea: st.regionEpoch[key.a], eb: st.regionEpoch[key.b]}
	st.geoMu.Unlock()
	return ok, cost, nil
}

// evalRel computes one spatial relation over the store's precomputed
// derived geometry and the threshold-aware predicates. Each branch is
// boolean-identical to its evalRelNaive counterpart: the derived
// fields are bit-identical to recomputation, and the threshold
// predicates answer from a conservative bound only when it is
// decisive, falling back to the exact kernel otherwise.
func (st *RegionStore) evalRel(rel string, a, b *scene.Region, eps float64) (bool, error) {
	da, db := st.derived[a.ID], st.derived[b.ID]
	switch rel {
	case RelIntersects:
		return geom.IntersectsD(a.Poly, da, b.Poly, db), nil
	case RelAdjacent:
		if !da.BBox.Expand(eps).Intersects(db.BBox) {
			return false, nil
		}
		return geom.WithinDistanceD(a.Poly, da, b.Poly, db, eps), nil
	case RelNear:
		return geom.WithinDistanceD(a.Poly, da, b.Poly, db, eps), nil
	case RelParallel:
		return geom.ParallelD(da, db, eps), nil
	case RelLeadsTo:
		// "Access roads lead to terminal buildings": the road's major
		// axis points at the target and the two are within range.
		// && short-circuits exactly like the naive path.
		return geom.WithinDistanceD(a.Poly, da, b.Poly, db, eps) &&
			geom.AlignedD(da, db, eps), nil
	case RelContainedIn:
		// Point-in-polygon over every vertex has no profitable bound;
		// no constraint in either KB uses it, so it stays exact.
		return b.Poly.ContainsPoly(a.Poly), nil
	case RelAligned:
		return geom.AlignedD(da, db, eps) && geom.ParallelD(da, db, 0.15), nil
	default:
		return false, fmt.Errorf("spam: unknown relation %q", rel)
	}
}

// evalRelNaive is the reference evaluation: per-call Polygon methods,
// no derived-geometry reuse. Combined with geom.UseExactOnly it
// reproduces the pre-fast-path code exactly; the differential oracle
// holds evalRel to its answers.
func (st *RegionStore) evalRelNaive(rel string, a, b *scene.Region, eps float64) (bool, error) {
	switch rel {
	case RelIntersects:
		return a.Poly.Intersects(b.Poly), nil
	case RelAdjacent:
		return a.Poly.Adjacent(b.Poly, eps), nil
	case RelNear:
		return a.Poly.Distance(b.Poly) <= eps, nil
	case RelParallel:
		return a.Poly.ParallelTo(b.Poly, eps), nil
	case RelLeadsTo:
		near := a.Poly.Distance(b.Poly) <= eps
		return near && a.Poly.AlignedWith(b.Poly, eps), nil
	case RelContainedIn:
		return b.Poly.ContainsPoly(a.Poly), nil
	case RelAligned:
		return a.Poly.AlignedWith(b.Poly, eps) && a.Poly.ParallelTo(b.Poly, 0.15), nil
	default:
		return false, fmt.Errorf("spam: unknown relation %q", rel)
	}
}

// boolSym converts a Go bool to the OPS5 t/f symbols.
func boolSym(b bool) symtab.Value {
	if b {
		return symtab.Sym("t")
	}
	return symtab.Sym("f")
}

// Register installs the SPAM external functions on an engine:
//
//	(geo-test <relation> <region-a> <region-b> <eps>) -> t | f
//	(rtf-verify <region>)                             -> measurement cost
//	(rtf-verify-align <region-a> <region-b>)          -> t | f
//	(fa-predict-area <seed-region> <kind>)            -> candidate count
//	(stereo-verify <region-a> <region-b>)             -> t | f
//
// Register is called from concurrent task builders under
// Pool.Prebuild. That is race-free by construction: each closure only
// reads the store's immutable scene and derived-geometry indexes
// (byID and derived never mutate after NewRegionStore) and writes
// only the target engine's own externals map, which no other builder
// touches. The store's two mutable maps — the fragment-seed cache and
// the spatial-predicate memo — are guarded by seedMu and geoMu (see
// FragmentSeed and Test); the concurrent-prebuild regression test
// runs all LCC builders in parallel under -race to keep this audit
// honest.
func (st *RegionStore) Register(e *ops5.Engine) {
	e.Register("geo-test", func(args []symtab.Value) (symtab.Value, float64, error) {
		if len(args) != 4 {
			return symtab.Nil, 0, fmt.Errorf("geo-test wants 4 args, got %d", len(args))
		}
		ok, cost, err := st.Test(args[0].SymVal(), int(args[1].IntVal()), int(args[2].IntVal()), args[3].FloatVal())
		if err != nil {
			return symtab.Nil, 0, err
		}
		return boolSym(ok), cost, nil
	})
	e.Register("rtf-verify", func(args []symtab.Value) (symtab.Value, float64, error) {
		if len(args) != 1 {
			return symtab.Nil, 0, fmt.Errorf("rtf-verify wants 1 arg")
		}
		r := st.Get(int(args[0].IntVal()))
		if r == nil {
			return symtab.Nil, 0, fmt.Errorf("rtf-verify: unknown region %d", args[0].IntVal())
		}
		// Re-measure the region boundary (simulated cost only; the
		// measurements were precomputed at task build time).
		cost := CostMeasure + 300*float64(len(r.Poly))
		return symtab.Int(int64(len(r.Poly))), cost, nil
	})
	e.Register("rtf-verify-align", func(args []symtab.Value) (symtab.Value, float64, error) {
		if len(args) != 2 {
			return symtab.Nil, 0, fmt.Errorf("rtf-verify-align wants 2 args")
		}
		a, b := st.Get(int(args[0].IntVal())), st.Get(int(args[1].IntVal()))
		if a == nil || b == nil {
			return symtab.Nil, 0, fmt.Errorf("rtf-verify-align: unknown region")
		}
		// Cached centroids and major axes; bit-identical to the
		// per-call AlignedWith/ParallelTo computation.
		da, db := st.derived[a.ID], st.derived[b.ID]
		ok := geom.AlignedD(da, db, 300) && geom.ParallelD(da, db, 0.2)
		// Alignment is a light axis test, far cheaper than the full
		// boundary predicates.
		cost := CostMeasure + 300*float64(len(a.Poly)+len(b.Poly))
		return boolSym(ok), cost, nil
	})
	e.Register("fa-predict-area", func(args []symtab.Value) (symtab.Value, float64, error) {
		if len(args) != 2 {
			return symtab.Nil, 0, fmt.Errorf("fa-predict-area wants 2 args")
		}
		r := st.Get(int(args[0].IntVal()))
		if r == nil {
			return symtab.Nil, 0, fmt.Errorf("fa-predict-area: unknown region")
		}
		// Count plausible sub-area candidates inside the seed's
		// neighbourhood: regions overlapping the expanded bbox
		// (cached boxes; same scan order and booleans).
		bb := st.derived[r.ID].BBox.Expand(faPredictRadius)
		n := 0
		for _, other := range st.scene.Regions {
			if other.ID != r.ID && bb.Intersects(st.derived[other.ID].BBox) {
				n++
			}
		}
		cost := CostPredict + CostGeoPerVert*float64(len(r.Poly))*4
		return symtab.Int(int64(n)), cost, nil
	})
	e.Register("stereo-verify", func(args []symtab.Value) (symtab.Value, float64, error) {
		if len(args) != 2 {
			return symtab.Nil, 0, fmt.Errorf("stereo-verify wants 2 args")
		}
		a, b := st.Get(int(args[0].IntVal())), st.Get(int(args[1].IntVal()))
		if a == nil || b == nil {
			return symtab.Nil, 0, fmt.Errorf("stereo-verify: unknown region")
		}
		// Disambiguation heuristic: the larger, more compact region
		// wins a conflicting-hypothesis contest (cached area and
		// compactness).
		da, db := st.derived[a.ID], st.derived[b.ID]
		sa := da.Area * math.Sqrt(da.Compact)
		sb := db.Area * math.Sqrt(db.Compact)
		return boolSym(sa >= sb), CostStereo, nil
	})
}

// Measurements returns the region attributes asserted into RTF working
// memory, quantized for stable rule matching.
func Measurements(r *scene.Region) (area, elong, compact, intensity, texture float64) {
	return quantize(r, r.Poly.Area(), r.Poly.Elongation(), r.Poly.Compactness())
}

// MeasurementsOf is Measurements served from the store's
// derived-geometry cache — same values, no per-call recomputation of
// area, elongation and compactness.
func (st *RegionStore) MeasurementsOf(r *scene.Region) (area, elong, compact, intensity, texture float64) {
	d := st.derived[r.ID]
	if d == nil || uncachedGeo.Load() {
		return Measurements(r)
	}
	return quantize(r, d.Area, d.Elong, d.Compact)
}

// quantize applies the RTF working-memory quantization to raw
// measurements.
func quantize(r *scene.Region, a, e, c float64) (area, elong, compact, intensity, texture float64) {
	area = math.Round(a)
	if math.IsInf(e, 1) || e > 1e6 {
		e = 1e6
	}
	elong = math.Round(e*100) / 100
	compact = math.Round(c*1000) / 1000
	intensity = math.Round(r.Intensity*10) / 10
	texture = math.Round(r.Texture*1000) / 1000
	return
}

// NearbyFragments returns the fragments of the wanted class whose
// regions fall within radius of the focal fragment's region — the
// candidate partners of one constraint.
func NearbyFragments(st *RegionStore, focal *Fragment, want scene.Kind, all []*Fragment, radius float64) []*Fragment {
	fr := st.Get(focal.RegionID)
	if fr == nil {
		return nil
	}
	bb := st.derived[focal.RegionID].BBox.Expand(radius)
	var out []*Fragment
	for _, f := range all {
		if f.ID == focal.ID || f.Type != want {
			continue
		}
		r := st.Get(f.RegionID)
		if r == nil {
			continue
		}
		if bb.Intersects(st.derived[f.RegionID].BBox) {
			out = append(out, f)
		}
	}
	return out
}
