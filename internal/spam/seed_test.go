package spam

import (
	"testing"

	"spampsm/internal/tlp"
)

// TestSPAMDifferentialBatchedVsUnbatchedSeed is the full-rule-set
// seed-load oracle: a complete four-phase interpretation must be
// observably identical whether task working memories are loaded by
// batched AssertBatch with the template route memo (default) or by the
// reference per-WME path (UseUnbatchedSeed) — same firings, same
// simulated instruction counts per phase, same fragments, pairs,
// outcomes, functional areas, and final model. The batched run uses
// Prebuild so the route memo and fragment-seed cache are also hit from
// concurrent builders.
func TestSPAMDifferentialBatchedVsUnbatchedSeed(t *testing.T) {
	run := func(unbatched, prebuild bool) *Interpretation {
		t.Helper()
		UseUnbatchedSeed(unbatched)
		defer UseUnbatchedSeed(false)
		d := smallDC(t)
		in, err := d.Interpret(InterpretOptions{Workers: 2, Prebuild: prebuild})
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	batched := run(false, true)
	unbatched := run(true, false)
	compareInterpretations(t, "batched", batched, "unbatched", unbatched)
}

// TestConcurrentLCCPrebuildSeedCache prebuilds every LCC task of a
// scene in parallel — the workload that hammers the RegionStore's
// fragment-seed cache and the shared template's route memo from many
// goroutines at once — and requires the results to match a serial,
// unprebuilt reference. Run under -race (make oracle / CI) this is the
// regression test for the RegionStore.Register concurrency audit.
func TestConcurrentLCCPrebuildSeedCache(t *testing.T) {
	d := smallDC(t)
	rtf := BuildRTFTasks(d.KB, d.Store, d.Progs.RTF, 0, false)
	rtfResults, err := tlp.RunSerial(rtf, 0)
	if err != nil {
		t.Fatal(err)
	}
	frags := ExtractFragments(rtfResults)
	if len(frags) == 0 {
		t.Fatal("RTF produced no fragments: concurrency test is vacuous")
	}

	refTasks := BuildLCCTasks(d.KB, d.Store, d.Progs.LCC, frags, Level3, false)
	refResults, err := tlp.RunSerial(refTasks, 0)
	if err != nil {
		t.Fatal(err)
	}
	refPairs, refOuts := ExtractLCC(refResults)

	tasks := BuildLCCTasks(d.KB, d.Store, d.Progs.LCC, frags, Level3, false)
	p := &tlp.Pool{Workers: 4}
	p.Prebuild(tasks, 8)
	results, err := p.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	pairs, outs := ExtractLCC(results)

	if len(pairs) != len(refPairs) || len(outs) != len(refOuts) {
		t.Fatalf("concurrent prebuild diverged: %d/%d pairs, %d/%d outcomes",
			len(pairs), len(refPairs), len(outs), len(refOuts))
	}
	for i := range pairs {
		if pairs[i] != refPairs[i] {
			t.Fatalf("pair %d differs: %+v vs %+v", i, pairs[i], refPairs[i])
		}
	}
	for i := range outs {
		if outs[i] != refOuts[i] {
			t.Fatalf("outcome %d differs: %+v vs %+v", i, outs[i], refOuts[i])
		}
	}
}
