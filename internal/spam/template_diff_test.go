package spam

import (
	"sync"
	"sync/atomic"
	"testing"

	"spampsm/internal/tlp"
)

// Full-SPAM differential oracle for the compile-once template path: a
// complete four-phase interpretation whose ~1k task engines are
// instantiated from the datasets' shared compiled templates (the
// default, here additionally exercising parallel prebuild) must be
// observably identical to one whose every engine recompiles its
// program from scratch (UseFreshCompile), under both matchers.
func TestSPAMDifferentialTemplateVsFreshCompile(t *testing.T) {
	for _, naive := range []bool{false, true} {
		name := "indexed"
		if naive {
			name = "naive"
		}
		t.Run(name, func(t *testing.T) {
			run := func(fresh, prebuild bool) *Interpretation {
				t.Helper()
				UseNaiveMatch(naive)
				UseFreshCompile(fresh)
				defer UseNaiveMatch(false)
				defer UseFreshCompile(false)
				d := smallDC(t)
				in, err := d.Interpret(InterpretOptions{Workers: 2, Prebuild: prebuild})
				if err != nil {
					t.Fatal(err)
				}
				return in
			}
			fresh := run(true, false)
			shared := run(false, true)
			compareInterpretations(t, "fresh-compiled", fresh, "template-instantiated", shared)
		})
	}
}

// TestConcurrentTaskBuildWithMatcherToggles builds and runs one
// dataset's RTF task queue on a parallel pool while another goroutine
// flips UseNaiveMatch mid-run. Each task engine instantiates whichever
// cached template variant the flag selects at build time; since the
// matchers are differentially identical, every task must reproduce the
// reference statistics regardless of which variant it drew. Under
// -race this also proves the per-Program variant cache and the shared
// templates tolerate concurrent instantiation.
func TestConcurrentTaskBuildWithMatcherToggles(t *testing.T) {
	d := smallDC(t)
	mkTasks := func() []*tlp.Task {
		return BuildRTFTasks(d.KB, d.Store, d.Progs.RTF, 3, false)
	}

	UseNaiveMatch(false)
	refResults, err := (&tlp.Pool{Workers: 1}).Run(mkTasks())
	if err != nil {
		t.Fatal(err)
	}
	if err := tlp.FirstError(refResults); err != nil {
		t.Fatal(err)
	}
	ref := map[string]*tlp.Result{}
	for _, r := range refResults {
		ref[r.TaskID] = r
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			UseNaiveMatch(i%2 == 0)
		}
	}()

	got, err := (&tlp.Pool{Workers: 4, DropEngines: true}).Run(mkTasks())
	stop.Store(true)
	wg.Wait()
	UseNaiveMatch(false)
	if err != nil {
		t.Fatal(err)
	}
	if err := tlp.FirstError(got); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(refResults) {
		t.Fatalf("got %d results, want %d", len(got), len(refResults))
	}
	for _, r := range got {
		want, ok := ref[r.TaskID]
		if !ok {
			t.Fatalf("task %s missing from reference run", r.TaskID)
		}
		if r.Stats != want.Stats {
			t.Errorf("task %s: stats %+v != reference %+v", r.TaskID, r.Stats, want.Stats)
		}
	}
}
