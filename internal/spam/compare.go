package spam

import "reflect"

// SameOutputs reports whether two interpretations describe the same
// scene understanding — fragments, consistent pairs, LCC outcomes,
// functional areas, predictions and the final model. Cost accounting
// (phase statistics, task logs, memory figures) is deliberately
// excluded: it legitimately differs between an incremental session
// update and a from-scratch run even when the understanding is
// byte-identical. The incremental differential oracles and the
// ext-incremental experiment use this as their identity predicate.
func SameOutputs(a, b *Interpretation) bool {
	return reflect.DeepEqual(a.Fragments, b.Fragments) &&
		reflect.DeepEqual(a.Pairs, b.Pairs) &&
		reflect.DeepEqual(a.Outcomes, b.Outcomes) &&
		reflect.DeepEqual(a.FAs, b.FAs) &&
		reflect.DeepEqual(a.Predictions, b.Predictions) &&
		a.ModelFound == b.ModelFound &&
		reflect.DeepEqual(a.Model, b.Model)
}
