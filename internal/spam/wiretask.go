package spam

import (
	"fmt"

	"spampsm/internal/ops5"
	"spampsm/internal/tlp"
)

// WireBuild resolves a shipped task description against this dataset:
// it returns the engine builder a cluster worker runs in place of the
// original Task.Build closure. The builder instantiates the phase's
// program from the worker's own (identically generated) dataset,
// registers the engine with the worker's RegionStore, and asserts the
// shipped seed batch — the same three steps every local task builder
// performs, so the resulting engine, and everything it computes, is
// byte-identical to the coordinator-side original.
func (d *Dataset) WireBuild(spec *tlp.WireSpec, capture bool) (func(s *ops5.Scratch) (*ops5.Engine, error), error) {
	var prog *ops5.Program
	switch spec.Phase {
	case "rtf":
		prog = d.Progs.RTF
	case "lcc":
		prog = d.Progs.LCC
	case "fa":
		prog = d.Progs.FA
	case "model":
		prog = d.Progs.Model
	default:
		return nil, fmt.Errorf("spam: wire task phase %q unknown (want rtf, lcc, fa or model)", spec.Phase)
	}
	seeds := spec.Seeds
	return func(s *ops5.Scratch) (*ops5.Engine, error) {
		e, err := newTaskEngine(prog, capture, s)
		if err != nil {
			return nil, err
		}
		d.Store.Register(e)
		if err := e.AssertBatch(seeds); err != nil {
			return nil, err
		}
		return e, nil
	}, nil
}
