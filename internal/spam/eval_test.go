package spam

import (
	"strings"
	"testing"

	"spampsm/internal/scene"
	"spampsm/internal/tlp"
)

func TestClassScoreMath(t *testing.T) {
	cs := ClassScore{TP: 8, FP: 2, FN: 4}
	if p := cs.Precision(); p != 0.8 {
		t.Errorf("precision = %v", p)
	}
	if r := cs.Recall(); r != 8.0/12 {
		t.Errorf("recall = %v", r)
	}
	f1 := cs.F1()
	if f1 <= 0.7 || f1 >= 0.75 {
		t.Errorf("f1 = %v", f1) // 2*0.8*(2/3)/(0.8+2/3) ≈ 0.727
	}
	var zero ClassScore
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 {
		t.Error("zero score must not divide by zero")
	}
}

func TestEvaluateRTFSynthetic(t *testing.T) {
	sc := scene.Generate(scene.DC.Scale(0.5))
	// Perfect oracle hypotheses: one correct fragment per non-noise region.
	var frags []*Fragment
	id := 1
	for _, r := range sc.Regions {
		if r.TrueKind == scene.Noise {
			continue
		}
		frags = append(frags, &Fragment{ID: id, RegionID: r.ID, Type: r.TrueKind, Conf: 90})
		id++
	}
	acc := EvaluateRTF(sc, frags)
	if acc.TopAccuracy() != 1.0 || acc.Unclassified != 0 {
		t.Errorf("oracle accuracy = %v (%d unclassified)", acc.TopAccuracy(), acc.Unclassified)
	}
	if acc.MacroF1() != 1.0 {
		t.Errorf("oracle macro-F1 = %v", acc.MacroF1())
	}
	// Corrupt a third of the hypotheses.
	for i := 0; i < len(frags); i += 3 {
		frags[i].Type = scene.Noise // always wrong
	}
	acc = EvaluateRTF(sc, frags)
	if acc.TopAccuracy() >= 1.0 || acc.TopAccuracy() < 0.5 {
		t.Errorf("corrupted accuracy = %v", acc.TopAccuracy())
	}
}

func TestEvaluateRealRTF(t *testing.T) {
	d := smallDC(t)
	tasks := BuildRTFTasks(d.KB, d.Store, d.Progs.RTF, 3, false)
	results, err := (&tlp.Pool{Workers: 2}).Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	frags := ExtractFragments(results)
	acc := EvaluateRTF(d.Scene, frags)
	// The knowledge-based classifier should clearly beat chance (9
	// classes → ~11%) on its best hypotheses.
	if acc.TopAccuracy() < 0.35 {
		t.Errorf("RTF accuracy = %.2f, suspiciously low", acc.TopAccuracy())
	}
	report := acc.Report()
	for _, want := range []string{"precision", "runway", "correct"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	// Runways are the most distinctive class; recall should be high.
	if rs := acc.PerClass[scene.Runway]; rs == nil || rs.Recall() < 0.5 {
		t.Errorf("runway recall too low: %+v", rs)
	}
}
