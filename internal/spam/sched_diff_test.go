package spam

import (
	"fmt"
	"testing"

	"spampsm/internal/tlp"
)

// TestSPAMDifferentialSchedulingPolicies is the full-interpretation
// scheduling oracle: a complete four-phase interpretation must be
// observably identical — same phase statistics, simulated instruction
// counts, memory records, fragments, pairs, functional areas and final
// model — under every queue policy and memory budget, serial and
// parallel. A budget of 1 byte is the extreme case: every task clamps
// to the whole budget and execution fully serializes through the gate,
// yet nothing about the results may change.
func TestSPAMDifferentialSchedulingPolicies(t *testing.T) {
	run := func(pol tlp.QueuePolicy, budget float64, workers int) *Interpretation {
		t.Helper()
		d := smallDC(t)
		in, err := d.Interpret(InterpretOptions{Workers: workers, Sched: pol, MemBudget: budget})
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	base := run(tlp.FIFO, 0, 1)
	for _, cfg := range []struct {
		pol     tlp.QueuePolicy
		budget  float64
		workers int
	}{
		{tlp.FIFO, 0, 3},
		{tlp.LargestFirst, 0, 3},
		{tlp.PostOrder, 0, 3},
		{tlp.PostOrder, 1, 3},
		{tlp.LargestFirst, 1 << 16, 3},
	} {
		name := fmt.Sprintf("%v/B=%g/w=%d", cfg.pol, cfg.budget, cfg.workers)
		in := run(cfg.pol, cfg.budget, cfg.workers)
		compareInterpretations(t, "fifo-serial", base, name, in)
		for i := range base.Phases {
			bp, ip := &base.Phases[i], &in.Phases[i]
			if bp.PeakTaskBytes != ip.PeakTaskBytes || bp.SeedBytes != ip.SeedBytes {
				t.Errorf("%s: phase %s memory records diverge: (%.0f, %.0f) vs (%.0f, %.0f)",
					name, bp.Phase, bp.PeakTaskBytes, bp.SeedBytes, ip.PeakTaskBytes, ip.SeedBytes)
			}
		}
		if cfg.budget > 0 {
			if ms := in.MemSched; ms.Budget != cfg.budget {
				t.Errorf("%s: MemSched budget = %v", name, ms.Budget)
			}
		}
	}
}

// TestInterpretationMemoryRecordsPopulated: a real interpretation must
// carry non-trivial modeled memory figures — seed bytes in every phase
// and a positive per-task peak — since the scheduler's footprints and
// the budget curves are built from them.
func TestInterpretationMemoryRecordsPopulated(t *testing.T) {
	d := smallDC(t)
	in, err := d.Interpret(InterpretOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range in.Phases {
		if ph.Tasks == 0 {
			continue
		}
		if ph.SeedBytes <= 0 {
			t.Errorf("phase %s: seed bytes %v, want > 0", ph.Phase, ph.SeedBytes)
		}
		if ph.PeakTaskBytes <= 0 {
			t.Errorf("phase %s: peak task bytes %v, want > 0", ph.Phase, ph.PeakTaskBytes)
		}
	}
}
