package spam

import (
	"math"

	"spampsm/internal/geom"
	"spampsm/internal/scene"
)

// gridMinFragments is the pool size below which the uniform grid is
// not worth building: the linear scan over a handful of fragments is
// already cheaper than constructing cells.
const gridMinFragments = 24

// fragIndex is a uniform-grid spatial index over one fragment pool,
// built once per LCC decomposition and queried for every (focal,
// constraint) partner search, replacing the all-fragments scan of
// NearbyFragments. Queries return exactly NearbyFragments' output:
// the grid only narrows the candidate set, and the surviving
// candidates pass through the identical ID/type/bbox filters in the
// identical pool order.
//
// The index is used single-threaded: unitsForLevel builds it and
// issues every query before any task closure runs, so it needs no
// locking and its query scratch state is reusable.
type fragIndex struct {
	store      *RegionStore
	all        []*Fragment
	minX, minY float64
	cellW      float64
	cellH      float64
	cols, rows int
	// cells is partitioned by fragment kind: a partner search wants
	// exactly one kind, so gathering from the wanted kind's cell
	// table skips every other fragment up front — the same early type
	// filter the linear scan applies, paid once at build time.
	cells map[scene.Kind][][]int32 // kind -> cell -> ascending indices into all

	// Per-pool-index region bboxes, resolved once at build time so
	// queries never touch the store's maps. ok[i] is false for
	// fragments whose region is unknown (the scan skips those too).
	bbs []geom.Rect
	ok  []bool

	// Epoch-stamp dedupe scratch: mark[i] == gen means pool index i
	// was gathered by the current query.
	mark []uint32
	gen  uint32
}

// buildFragIndex indexes a fragment pool, or returns nil when the
// scan path should be used (uncached-geo mode, or a pool too small to
// amortize construction). A nil index is valid: partnersFor falls
// back to NearbyFragments.
func buildFragIndex(store *RegionStore, all []*Fragment) *fragIndex {
	if uncachedGeo.Load() || len(all) < gridMinFragments {
		return nil
	}
	// Union bbox of the pool's regions.
	first := true
	var union geom.Rect
	bbs := make([]geom.Rect, len(all))
	ok := make([]bool, len(all))
	for i, f := range all {
		d := store.Derived(f.RegionID)
		if d == nil {
			continue
		}
		bbs[i] = d.BBox
		ok[i] = true
		if first {
			union = d.BBox
			first = false
			continue
		}
		union.Min.X = math.Min(union.Min.X, d.BBox.Min.X)
		union.Min.Y = math.Min(union.Min.Y, d.BBox.Min.Y)
		union.Max.X = math.Max(union.Max.X, d.BBox.Max.X)
		union.Max.Y = math.Max(union.Max.Y, d.BBox.Max.Y)
	}
	if first {
		return nil // no resolvable regions
	}
	w, h := union.W(), union.H()
	if w <= 0 && h <= 0 {
		return nil // degenerate pool, scan is fine
	}
	// ~√n cells per axis keeps expected occupancy O(1) per cell for
	// uniformly spread regions; clamped so pathological pools cannot
	// explode the cell table.
	side := int(math.Ceil(math.Sqrt(float64(len(all)))))
	if side < 1 {
		side = 1
	}
	if side > 128 {
		side = 128
	}
	ix := &fragIndex{
		store: store,
		all:   all,
		minX:  union.Min.X,
		minY:  union.Min.Y,
		cols:  side,
		rows:  side,
		cellW: w / float64(side),
		cellH: h / float64(side),
		bbs:   bbs,
		ok:    ok,
		mark:  make([]uint32, len(all)),
	}
	if ix.cellW <= 0 {
		ix.cols = 1
		ix.cellW = 1
	}
	if ix.cellH <= 0 {
		ix.rows = 1
		ix.cellH = 1
	}
	ix.cells = map[scene.Kind][][]int32{}
	for i, f := range all {
		if !ok[i] {
			continue
		}
		kc := ix.cells[f.Type]
		if kc == nil {
			kc = make([][]int32, ix.cols*ix.rows)
			ix.cells[f.Type] = kc
		}
		c0, r0, c1, r1 := ix.cellRange(bbs[i])
		for r := r0; r <= r1; r++ {
			for c := c0; c <= c1; c++ {
				cell := r*ix.cols + c
				kc[cell] = append(kc[cell], int32(i))
			}
		}
	}
	return ix
}

// cellRange maps a bbox to the clamped inclusive cell-coordinate
// rectangle it overlaps.
func (ix *fragIndex) cellRange(bb geom.Rect) (c0, r0, c1, r1 int) {
	c0 = clampCell(int(math.Floor((bb.Min.X-ix.minX)/ix.cellW)), ix.cols)
	c1 = clampCell(int(math.Floor((bb.Max.X-ix.minX)/ix.cellW)), ix.cols)
	r0 = clampCell(int(math.Floor((bb.Min.Y-ix.minY)/ix.cellH)), ix.rows)
	r1 = clampCell(int(math.Floor((bb.Max.Y-ix.minY)/ix.cellH)), ix.rows)
	return
}

func clampCell(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}

// query returns the constraint's candidate partners — byte-identical
// to NearbyFragments(store, focal, want, all, radius) over the
// indexed pool.
func (ix *fragIndex) query(focal *Fragment, want scene.Kind, radius float64) []*Fragment {
	fd := ix.store.Derived(focal.RegionID)
	if fd == nil {
		return nil
	}
	bb := fd.BBox.Expand(radius)
	kc := ix.cells[want]
	if kc == nil {
		return nil // no fragment of the wanted kind in the pool
	}
	ix.gen++
	if ix.gen == 0 { // epoch counter wrapped: flush stale marks
		clear(ix.mark)
		ix.gen = 1
	}
	gen := ix.gen
	c0, r0, c1, r1 := ix.cellRange(bb)
	lo, hi := int32(len(ix.all)), int32(-1)
	for r := r0; r <= r1; r++ {
		for c := c0; c <= c1; c++ {
			for _, i := range kc[r*ix.cols+c] {
				ix.mark[i] = gen
				if i < lo {
					lo = i
				}
				if i > hi {
					hi = i
				}
			}
		}
	}
	// Walk the marked pool indices in ascending order: identical
	// filters and output ordering to the linear scan, restricted to
	// the gathered candidates (all of the wanted kind already).
	var out []*Fragment
	for i := lo; i <= hi; i++ {
		if ix.mark[i] != gen {
			continue
		}
		f := ix.all[i]
		if f.ID == focal.ID {
			continue
		}
		if bb.Intersects(ix.bbs[i]) {
			out = append(out, f)
		}
	}
	return out
}
