package spam

import (
	"context"
	"reflect"
	"testing"

	"spampsm/internal/scene"
)

// compareOutputs asserts that two interpretations produced the same
// scene understanding — fragments, consistent pairs, LCC outcomes,
// functional areas, predictions and final model — without comparing
// cost accounting, which legitimately differs between an incremental
// update (retract charges, reused tasks' historical logs) and a
// from-scratch run.
func compareOutputs(t *testing.T, aName string, a *Interpretation, bName string, b *Interpretation) {
	t.Helper()
	if !reflect.DeepEqual(a.Fragments, b.Fragments) {
		t.Errorf("fragments differ: %s %d %s %d", aName, len(a.Fragments), bName, len(b.Fragments))
	}
	if !reflect.DeepEqual(a.Pairs, b.Pairs) {
		t.Errorf("consistent pairs differ: %s %d %s %d", aName, len(a.Pairs), bName, len(b.Pairs))
	}
	if !reflect.DeepEqual(a.Outcomes, b.Outcomes) {
		t.Errorf("LCC outcomes differ: %s %d %s %d", aName, len(a.Outcomes), bName, len(b.Outcomes))
	}
	if !reflect.DeepEqual(a.FAs, b.FAs) {
		t.Errorf("functional areas differ: %s %d %s %d", aName, len(a.FAs), bName, len(b.FAs))
	}
	if !reflect.DeepEqual(a.Predictions, b.Predictions) {
		t.Errorf("predictions differ: %s %d %s %d", aName, len(a.Predictions), bName, len(b.Predictions))
	}
	if a.ModelFound != b.ModelFound || !reflect.DeepEqual(a.Model, b.Model) {
		t.Errorf("final models differ: %s %+v %s %+v", aName, a.Model, bName, b.Model)
	}
	if a.TotalFirings() == 0 {
		t.Fatal("interpretation fired nothing: differential test is vacuous")
	}
}

// fromScratch interprets the given scene state on a fresh dataset —
// the reference an incremental update must match byte-for-byte.
func fromScratch(t *testing.T, base *Dataset, s *scene.Scene, opt InterpretOptions) *Interpretation {
	t.Helper()
	d := NewDatasetWith(s.Clone(), base.KB, base.Progs)
	in, err := d.Interpret(opt)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestSessionDifferentialIncremental is the incremental differential
// oracle: a session's initial interpretation must match the classic
// from-scratch path, and after each scene delta the incrementally
// updated interpretation — cached tasks reused, changed tasks re-run
// on reset warm engines — must be byte-identical to interpreting the
// updated scene from scratch.
func TestSessionDifferentialIncremental(t *testing.T) {
	d := smallDC(t)
	opt := InterpretOptions{Workers: 2}
	sess := NewSession(d, opt)
	in0, rep0, err := sess.Interpret(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep0.Fresh != rep0.Tasks || rep0.Reused != 0 || rep0.Rerun != 0 {
		t.Errorf("initial run should build everything fresh: %+v", rep0)
	}
	compareOutputs(t, "session", in0, "scratch", fromScratch(t, d, sess.Scene(), opt))

	for i, frac := range []float64{0.01, 0.05, 0.20} {
		delta := sess.Scene().Churn(scene.DefaultChurn(uint64(1000+i), frac))
		if delta.Empty() {
			t.Fatalf("churn %.2f produced an empty delta", frac)
		}
		in, rep, err := sess.Update(context.Background(), delta)
		if err != nil {
			t.Fatalf("update %.2f: %v", frac, err)
		}
		if rep.Reused == 0 {
			t.Errorf("churn %.2f: no task reuse at all: %+v", frac, rep)
		}
		if rep.Rerun == 0 {
			t.Errorf("churn %.2f: no warm engine was reset and re-run: %+v", frac, rep)
		}
		compareOutputs(t, "incremental", in, "scratch", fromScratch(t, d, sess.Scene(), opt))
	}
}

// TestSessionDifferentialReEntry covers the FA→LCC re-entry path and a
// non-default decomposition level under the same oracle.
func TestSessionDifferentialReEntry(t *testing.T) {
	d := smallDC(t)
	opt := InterpretOptions{Workers: 2, ReEntry: true, Level: Level2}
	sess := NewSession(d, opt)
	in0, _, err := sess.Interpret(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	compareOutputs(t, "session", in0, "scratch", fromScratch(t, d, sess.Scene(), opt))
	delta := sess.Scene().Churn(scene.DefaultChurn(7, 0.05))
	in, _, err := sess.Update(context.Background(), delta)
	if err != nil {
		t.Fatal(err)
	}
	compareOutputs(t, "incremental", in, "scratch", fromScratch(t, d, sess.Scene(), opt))
}

// TestSessionEmptyUpdate proves the no-op bound: an empty delta reuses
// every cached task, runs nothing, and charges only the diff scan.
func TestSessionEmptyUpdate(t *testing.T) {
	d := smallDC(t)
	sess := NewSession(d, InterpretOptions{Workers: 2})
	in0, _, err := sess.Interpret(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	in, rep, err := sess.Update(context.Background(), &scene.Delta{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rerun != 0 || rep.Fresh != 0 || rep.Dropped != 0 {
		t.Errorf("empty update ran work: %+v", rep)
	}
	if rep.Reused != rep.Tasks {
		t.Errorf("empty update reused %d of %d tasks", rep.Reused, rep.Tasks)
	}
	if rep.UpdateInstr != rep.DiffInstr {
		t.Errorf("empty update charged %v beyond the diff scan %v", rep.UpdateInstr, rep.DiffInstr)
	}
	compareOutputs(t, "noop", in, "initial", in0)
}

// TestSessionUpdateCostProportional asserts the headline property on
// the full DC scene: a 1%-churn update reuses the bulk of the task
// set and charges under 15% of the from-scratch interpretation's
// simulated cost. Full DC, not the scaled-down test scene: Scale
// shrinks the extent while the KB's constraint radii stay absolute,
// so in the small scene one moved region is a partner candidate of
// most focal units and legitimately invalidates their tasks —
// proportionality is a locality property, and the full scene is where
// the locality exists.
func TestSessionUpdateCostProportional(t *testing.T) {
	d, err := NewDataset(scene.DC)
	if err != nil {
		t.Fatal(err)
	}
	opt := InterpretOptions{Workers: 4}
	sess := NewSession(d, opt)
	if _, _, err := sess.Interpret(context.Background()); err != nil {
		t.Fatal(err)
	}
	delta := sess.Scene().Churn(scene.DefaultChurn(42, 0.01))
	_, rep, err := sess.Update(context.Background(), delta)
	if err != nil {
		t.Fatal(err)
	}
	full := fromScratch(t, d, sess.Scene(), opt)
	if ratio := rep.UpdateInstr / full.TotalInstr(); ratio >= 0.15 {
		t.Errorf("1%% churn update charged %.0f%% of from-scratch cost (update %.0f, full %.0f)",
			100*ratio, rep.UpdateInstr, full.TotalInstr())
	}
	if rep.Reused <= rep.Rerun+rep.Fresh {
		t.Errorf("1%% churn reran more than it reused: %+v", rep)
	}
	if rep.RetractedWMEs == 0 {
		t.Error("no warm engine retracted anything: reset path untested")
	}
}

// TestSessionDropsStaleTasks proves removal-side invalidation: heavy
// occlusion-only churn shrinks the scene, and the tasks whose focal
// work disappeared are dropped along with their engines.
func TestSessionDropsStaleTasks(t *testing.T) {
	d := smallDC(t)
	sess := NewSession(d, InterpretOptions{Workers: 2})
	if _, _, err := sess.Interpret(context.Background()); err != nil {
		t.Fatal(err)
	}
	delta := sess.Scene().Churn(scene.Churn{Seed: 3, Fraction: 0.3, Occlusion: 1.0})
	if len(delta.Removed) == 0 {
		t.Fatal("occlusion-only churn removed nothing")
	}
	in, rep, err := sess.Update(context.Background(), delta)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped == 0 {
		t.Errorf("removals dropped no tasks: %+v", rep)
	}
	compareOutputs(t, "incremental", in, "scratch",
		fromScratch(t, d, sess.Scene(), InterpretOptions{Workers: 2}))
}

// TestSessionLiveGridConsistency drives the persistent grid through
// several updates and verifies its slots against the store each time.
func TestSessionLiveGridConsistency(t *testing.T) {
	d := smallDC(t)
	sess := NewSession(d, InterpretOptions{Workers: 2})
	if _, _, err := sess.Interpret(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		delta := sess.Scene().Churn(scene.DefaultChurn(uint64(50+i), 0.1))
		if _, _, err := sess.Update(context.Background(), delta); err != nil {
			t.Fatal(err)
		}
		if sess.grid == nil {
			t.Skip("pool below grid threshold; scan path in use")
		}
		if err := sess.grid.checkConsistent(); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	gs := sess.grid.Stats()
	if gs.Refreshes == 0 || gs.Retained == 0 {
		t.Errorf("grid did no incremental work: %+v", gs)
	}
	if gs.Retained <= gs.Reinserted+gs.Removed+gs.Added {
		t.Errorf("grid churned more than it retained: %+v", gs)
	}
}
