package spam

import (
	"fmt"
	"sort"
	"strings"

	"spampsm/internal/scene"
)

// ClassScore is the per-class confusion tally of an RTF evaluation.
type ClassScore struct {
	TP, FP, FN int
}

// Precision returns TP / (TP + FP), or 0 when nothing was predicted.
func (c ClassScore) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP / (TP + FN), or 0 when the class has no instances.
func (c ClassScore) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c ClassScore) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy is the result of evaluating RTF hypotheses against the
// scene generator's ground truth.
type Accuracy struct {
	PerClass map[scene.Kind]*ClassScore
	// Regions is the number of evaluable regions (noise excluded).
	Regions int
	// Correct is the number of regions whose best hypothesis matches
	// the ground truth.
	Correct int
	// Unclassified is the number of evaluable regions with no
	// hypothesis at all.
	Unclassified int
}

// TopAccuracy returns Correct / Regions.
func (a Accuracy) TopAccuracy() float64 {
	if a.Regions == 0 {
		return 0
	}
	return float64(a.Correct) / float64(a.Regions)
}

// MacroF1 averages F1 over the classes that occur in the scene.
func (a Accuracy) MacroF1() float64 {
	var sum float64
	n := 0
	for _, cs := range a.PerClass {
		if cs.TP+cs.FN > 0 { // class present in ground truth
			sum += cs.F1()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// EvaluateRTF scores the best (highest-confidence) hypothesis of each
// region against the generator's ground truth. Noise regions are
// excluded: SPAM is not expected to interpret segmentation artifacts,
// only to leave them for context-driven prediction.
func EvaluateRTF(sc *scene.Scene, frags []*Fragment) Accuracy {
	best := map[int]*Fragment{}
	for _, f := range frags {
		if b, ok := best[f.RegionID]; !ok || f.Conf > b.Conf {
			best[f.RegionID] = f
		}
	}
	acc := Accuracy{PerClass: map[scene.Kind]*ClassScore{}}
	score := func(k scene.Kind) *ClassScore {
		if acc.PerClass[k] == nil {
			acc.PerClass[k] = &ClassScore{}
		}
		return acc.PerClass[k]
	}
	for _, r := range sc.Regions {
		if r.TrueKind == scene.Noise {
			continue
		}
		acc.Regions++
		b := best[r.ID]
		if b == nil {
			acc.Unclassified++
			score(r.TrueKind).FN++
			continue
		}
		if b.Type == r.TrueKind {
			acc.Correct++
			score(r.TrueKind).TP++
		} else {
			score(r.TrueKind).FN++
			score(b.Type).FP++
		}
	}
	return acc
}

// Report renders the evaluation as a table.
func (a Accuracy) Report() string {
	var kinds []scene.Kind
	for k := range a.PerClass {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "RTF classification vs ground truth: %d/%d regions correct (%.0f%%), %d unclassified, macro-F1 %.2f\n",
		a.Correct, a.Regions, 100*a.TopAccuracy(), a.Unclassified, a.MacroF1())
	fmt.Fprintf(&b, "%-20s %5s %5s %5s %9s %7s %5s\n", "class", "TP", "FP", "FN", "precision", "recall", "F1")
	for _, k := range kinds {
		cs := a.PerClass[k]
		fmt.Fprintf(&b, "%-20s %5d %5d %5d %9.2f %7.2f %5.2f\n",
			k, cs.TP, cs.FP, cs.FN, cs.Precision(), cs.Recall(), cs.F1())
	}
	return b.String()
}
