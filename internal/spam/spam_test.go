package spam

import (
	"strings"
	"testing"

	"spampsm/internal/ops5"
	"spampsm/internal/scene"
	"spampsm/internal/tlp"
)

// smallDC returns a reduced DC dataset for fast tests.
func smallDC(t *testing.T) *Dataset {
	t.Helper()
	p := scene.DC.Scale(0.5)
	p.Name = "DC-small"
	d, err := NewDataset(p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestKBStructure(t *testing.T) {
	kb := AirportKB()
	if len(kb.Classes) != 9 {
		t.Errorf("classes = %d, want 9", len(kb.Classes))
	}
	if len(kb.Constraints) < 20 {
		t.Errorf("constraints = %d, want >= 20", len(kb.Constraints))
	}
	for _, k := range kb.Classes {
		if len(kb.ConstraintsFor(k)) < 2 {
			t.Errorf("class %s has %d constraints, want >= 2", k, len(kb.ConstraintsFor(k)))
		}
	}
	// Every constraint references declared classes and a known relation.
	rels := map[string]bool{RelIntersects: true, RelAdjacent: true, RelNear: true,
		RelParallel: true, RelLeadsTo: true, RelContainedIn: true, RelAligned: true}
	classSet := map[scene.Kind]bool{}
	for _, k := range kb.Classes {
		classSet[k] = true
	}
	ids := map[string]bool{}
	for _, c := range kb.Constraints {
		if !classSet[c.Subject] || !classSet[c.Object] {
			t.Errorf("constraint %s references undeclared class", c.ID)
		}
		if !rels[c.Relation] {
			t.Errorf("constraint %s uses unknown relation %s", c.ID, c.Relation)
		}
		if ids[c.ID] {
			t.Errorf("duplicate constraint id %s", c.ID)
		}
		ids[c.ID] = true
		if c.Radius <= 0 {
			t.Errorf("constraint %s has no search radius", c.ID)
		}
	}
	if kb.Constraint(kb.Constraints[0].ID) == nil {
		t.Error("Constraint lookup failed")
	}
	if kb.Constraint("nope") != nil {
		t.Error("unknown constraint should be nil")
	}
}

func TestSuburbanKBStructure(t *testing.T) {
	kb := SuburbanKB()
	if len(kb.Classes) != 4 || len(kb.Constraints) < 6 || len(kb.Evidence) < 6 {
		t.Errorf("suburban KB too small: %d classes %d constraints %d evidence",
			len(kb.Classes), len(kb.Constraints), len(kb.Evidence))
	}
}

func TestGeneratedProgramsParse(t *testing.T) {
	for _, kb := range []*KB{AirportKB(), SuburbanKB()} {
		progs, err := BuildPrograms(kb)
		if err != nil {
			t.Fatalf("%s: %v", kb.Domain, err)
		}
		if progs.NumProductions() < 30 {
			t.Errorf("%s: only %d productions generated", kb.Domain, progs.NumProductions())
		}
		// Check productions (both confidence bands) and the dormant
		// audit production per constraint.
		for _, c := range kb.Constraints {
			for _, name := range []string{"lcc-check-" + c.ID + "-hi", "lcc-check-" + c.ID + "-lo", "lcc-audit-" + c.ID} {
				if progs.LCC.Production(name) == nil {
					t.Errorf("missing production %s", name)
				}
			}
		}
		// One classification production per evidence entry.
		for _, ev := range kb.Evidence {
			name := "rtf-" + string(ev.Class) + "-" + ev.Tier
			if progs.RTF.Production(name) == nil {
				t.Errorf("missing RTF production %s", name)
			}
		}
	}
}

func TestGeoTestRelations(t *testing.T) {
	d := smallDC(t)
	st := d.Store
	runways := d.Scene.ByKind(scene.Runway)
	if len(runways) < 1 {
		t.Fatal("no runways")
	}
	// A region intersects itself-adjacent strips etc.: basic sanity via
	// reflexive-ish checks.
	r := runways[0]
	ok, cost, err := st.Test(RelNear, r.ID, r.ID, 10)
	if err != nil || !ok || cost <= 0 {
		t.Errorf("near(self) = %v cost %v err %v", ok, cost, err)
	}
	if _, _, err := st.Test("warp", r.ID, r.ID, 0); err == nil {
		t.Error("unknown relation must error")
	}
	if _, _, err := st.Test(RelNear, -5, r.ID, 0); err == nil {
		t.Error("unknown region must error")
	}
	// DC geometry is costlier per test than SF geometry.
	sfD, err := NewDataset(scene.SF)
	if err != nil {
		t.Fatal(err)
	}
	sfR := sfD.Scene.ByKind(scene.Runway)[0]
	_, sfCost, _ := sfD.Store.Test(RelNear, sfR.ID, sfR.ID, 10)
	if sfCost >= cost {
		t.Errorf("SF per-test cost (%v) should be below DC's (%v)", sfCost, cost)
	}
}

func TestRTFPhaseClassifies(t *testing.T) {
	d := smallDC(t)
	tasks := BuildRTFTasks(d.KB, d.Store, d.Progs.RTF, 3, false)
	if len(tasks) < 5 {
		t.Fatalf("too few RTF tasks: %d", len(tasks))
	}
	results, err := (&tlp.Pool{Workers: 2}).Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if err := tlp.FirstError(results); err != nil {
		t.Fatal(err)
	}
	frags := ExtractFragments(results)
	if len(frags) == 0 {
		t.Fatal("no fragments")
	}
	// Classification quality: most runway-truth regions should carry a
	// runway hypothesis.
	byRegion := map[int][]*Fragment{}
	for _, f := range frags {
		byRegion[f.RegionID] = append(byRegion[f.RegionID], f)
	}
	hit, total := 0, 0
	for _, r := range d.Scene.ByKind(scene.Runway) {
		total++
		for _, f := range byRegion[r.ID] {
			if f.Type == scene.Runway {
				hit++
				break
			}
		}
	}
	if total > 0 && hit*2 < total {
		t.Errorf("runway recall %d/%d too low", hit, total)
	}
	// Fragment IDs unique.
	seen := map[int]bool{}
	for _, f := range frags {
		if seen[f.ID] {
			t.Errorf("duplicate fragment id %d", f.ID)
		}
		seen[f.ID] = true
		if f.Conf <= 0 || f.Conf > 110 {
			t.Errorf("fragment %d conf %d out of range", f.ID, f.Conf)
		}
	}
}

// runLCC is a helper running RTF then LCC at a level.
func runLCC(t *testing.T, d *Dataset, level Level) ([]*Fragment, []*tlp.Result) {
	t.Helper()
	rtfTasks := BuildRTFTasks(d.KB, d.Store, d.Progs.RTF, 3, false)
	rtfResults, err := (&tlp.Pool{Workers: 2}).Run(rtfTasks)
	if err != nil {
		t.Fatal(err)
	}
	frags := ExtractFragments(rtfResults)
	lccTasks := BuildLCCTasks(d.KB, d.Store, d.Progs.LCC, frags, level, false)
	if len(lccTasks) == 0 {
		t.Fatal("no LCC tasks")
	}
	lccResults, err := (&tlp.Pool{Workers: 2}).Run(lccTasks)
	if err != nil {
		t.Fatal(err)
	}
	if err := tlp.FirstError(lccResults); err != nil {
		t.Fatal(err)
	}
	return frags, lccResults
}

func TestLCCPhaseCompletes(t *testing.T) {
	d := smallDC(t)
	frags, results := runLCC(t, d, Level3)
	pairs, outs := ExtractLCC(results)
	if len(outs) != len(frags) {
		t.Errorf("outcomes %d != focal objects %d (every task must finish)", len(outs), len(frags))
	}
	for _, o := range outs {
		if o.Status != "consistent" && o.Status != "weak" {
			t.Errorf("object %d: bad status %q", o.Object, o.Status)
		}
		if o.Support > o.Checked {
			t.Errorf("object %d: support %d > checked %d", o.Object, o.Support, o.Checked)
		}
	}
	if len(pairs) == 0 {
		t.Error("expected some consistent pairs")
	}
	// Pairs reference real fragments.
	ids := map[int]bool{}
	for _, f := range frags {
		ids[f.ID] = true
	}
	for _, p := range pairs {
		if !ids[p.Object] || !ids[p.Partner] {
			t.Errorf("pair references unknown fragment: %+v", p)
		}
		if p.Object == p.Partner {
			t.Errorf("self-pair: %+v", p)
		}
	}
}

func TestLCCLevelsSameVerdicts(t *testing.T) {
	// The decomposition level must not change the computation's result,
	// only its granularity: all four levels check identical
	// (focal, partner) pairs, because the control process scopes every
	// task's checks explicitly.
	d := smallDC(t)
	taskCounts := map[Level]int{}
	pairSets := map[Level]map[ConsistentPair]bool{}
	for _, level := range []Level{Level4, Level3, Level2, Level1} {
		_, results := runLCC(t, d, level)
		taskCounts[level] = len(results)
		pairs, outs := ExtractLCC(results)
		set := map[ConsistentPair]bool{}
		for _, p := range pairs {
			set[p] = true
		}
		pairSets[level] = set
		// Every task finished (checked == expected reached everywhere).
		for _, o := range outs {
			if o.Status != "consistent" && o.Status != "weak" {
				t.Fatalf("level %d: unfinished outcome %+v", level, o)
			}
		}
	}
	for _, level := range []Level{Level4, Level2, Level1} {
		if len(pairSets[level]) != len(pairSets[Level3]) {
			t.Errorf("level %d: %d pairs vs Level 3's %d", level, len(pairSets[level]), len(pairSets[Level3]))
		}
		for p := range pairSets[Level3] {
			if !pairSets[level][p] {
				t.Errorf("level %d: missing pair %+v", level, p)
			}
		}
	}
	if !(taskCounts[Level4] < taskCounts[Level3] && taskCounts[Level3] < taskCounts[Level2] &&
		taskCounts[Level2] < taskCounts[Level1]) {
		t.Errorf("task counts must grow with decomposition depth: %v", taskCounts)
	}
}

func TestLCCLevel1Granularity(t *testing.T) {
	d := smallDC(t)
	rtfTasks := BuildRTFTasks(d.KB, d.Store, d.Progs.RTF, 3, false)
	rtfResults, _ := (&tlp.Pool{Workers: 2}).Run(rtfTasks)
	frags := ExtractFragments(rtfResults)
	l1 := BuildLCCTasks(d.KB, d.Store, d.Progs.LCC, frags, Level1, false)
	l2 := BuildLCCTasks(d.KB, d.Store, d.Progs.LCC, frags, Level2, false)
	if len(l1) <= len(l2) {
		t.Errorf("Level 1 (%d) must have more tasks than Level 2 (%d)", len(l1), len(l2))
	}
	// A Level-1 task performs very few firings (3-ish: check, tally,
	// finish).
	res, err := tlp.RunSerial(l1[:5], 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Stats.Firings < 2 || r.Stats.Firings > 10 {
			t.Errorf("L1 task fired %d times, want a handful", r.Stats.Firings)
		}
	}
}

func TestFullInterpretation(t *testing.T) {
	d := smallDC(t)
	in, err := d.Interpret(InterpretOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Phases) != 4 {
		t.Fatalf("phases = %d", len(in.Phases))
	}
	for _, name := range []string{"RTF", "LCC", "FA", "MODEL"} {
		p := in.Phase(name)
		if p == nil {
			t.Fatalf("missing phase %s", name)
		}
		if p.Firings == 0 && name != "FA" {
			t.Errorf("phase %s fired nothing", name)
		}
	}
	if !in.ModelFound {
		t.Error("no final model")
	}
	if in.Model.NFAs == 0 {
		t.Error("model has no functional areas")
	}
	// LCC dominates total time, as in the paper's Tables 1-3.
	lcc := in.Phase("LCC").Instr
	if lcc < 0.5*in.TotalInstr() {
		t.Errorf("LCC share = %.2f of total, want dominant", lcc/in.TotalInstr())
	}
	if in.TotalFirings() < 500 {
		t.Errorf("total firings = %d, suspiciously low", in.TotalFirings())
	}
}

func TestReEntryAddsWork(t *testing.T) {
	d := smallDC(t)
	plain, err := d.Interpret(InterpretOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	re, err := d.Interpret(InterpretOptions{Workers: 2, ReEntry: true})
	if err != nil {
		t.Fatal(err)
	}
	if re.Phase("LCC").Firings <= plain.Phase("LCC").Firings {
		t.Errorf("re-entry should add LCC firings: %d vs %d",
			re.Phase("LCC").Firings, plain.Phase("LCC").Firings)
	}
	if len(re.Fragments) <= len(plain.Fragments) {
		t.Errorf("re-entry should hypothesize new fragments: %d vs %d",
			len(re.Fragments), len(plain.Fragments))
	}
}

func TestMatchFractionBands(t *testing.T) {
	// The paper's headline workload properties: SPAM spends only
	// ~30-50% of its time in match (vs >90% for classic OPS5 systems);
	// RTF is more match-intensive (~60%) than LCC.
	d, err := NewDataset(scene.SF)
	if err != nil {
		t.Fatal(err)
	}
	in, err := d.Interpret(InterpretOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rtf := in.Phase("RTF").MatchFraction()
	lcc := in.Phase("LCC").MatchFraction()
	if rtf < 0.4 || rtf > 0.8 {
		t.Errorf("RTF match fraction = %.2f, want ~0.6", rtf)
	}
	// The paper reports <50% match in LCC; our measured fraction counts
	// working-memory initialization as match, so allow a little above.
	if lcc < 0.1 || lcc > 0.55 {
		t.Errorf("LCC match fraction = %.2f, want ~0.3-0.5 (paper: 30-50%%)", lcc)
	}
	if rtf <= lcc {
		t.Errorf("RTF (%.2f) should be more match-intensive than LCC (%.2f)", rtf, lcc)
	}
}

func TestDeterministicInterpretation(t *testing.T) {
	d1 := smallDC(t)
	d2 := smallDC(t)
	in1, err := d1.Interpret(InterpretOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	in2, err := d2.Interpret(InterpretOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Results are independent of worker count (asynchronous tasks, but
	// the tasks themselves are deterministic and independent).
	if len(in1.Fragments) != len(in2.Fragments) || len(in1.Pairs) != len(in2.Pairs) {
		t.Errorf("parallelism changed results: %d/%d fragments, %d/%d pairs",
			len(in1.Fragments), len(in2.Fragments), len(in1.Pairs), len(in2.Pairs))
	}
	if in1.TotalFirings() != in2.TotalFirings() {
		t.Errorf("firings differ: %d vs %d", in1.TotalFirings(), in2.TotalFirings())
	}
}

func TestSuburbanInterpretation(t *testing.T) {
	d, err := NewSuburbanDataset(scene.SuburbanParams{
		Name: "sub", Seed: 11, Blocks: 3, HousesPerBlock: 4, Verts: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	in, err := d.Interpret(InterpretOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Fragments) == 0 || len(in.Pairs) == 0 {
		t.Errorf("suburban interpretation empty: %d frags %d pairs", len(in.Fragments), len(in.Pairs))
	}
	if !in.ModelFound {
		t.Error("no suburban model")
	}
}

func TestTaskEstSizeOrdersWork(t *testing.T) {
	d := smallDC(t)
	rtfTasks := BuildRTFTasks(d.KB, d.Store, d.Progs.RTF, 3, false)
	rtfResults, _ := (&tlp.Pool{Workers: 2}).Run(rtfTasks)
	frags := ExtractFragments(rtfResults)
	tasks := BuildLCCTasks(d.KB, d.Store, d.Progs.LCC, frags, Level3, false)
	// EstSize should correlate with actual cost: compare the biggest
	// and smallest estimated tasks.
	var biggest, smallest *tlp.Task
	for _, task := range tasks {
		if biggest == nil || task.EstSize > biggest.EstSize {
			biggest = task
		}
		if smallest == nil || task.EstSize < smallest.EstSize {
			smallest = task
		}
	}
	if biggest.EstSize <= smallest.EstSize {
		t.Skip("degenerate size distribution")
	}
	res, err := tlp.RunSerial([]*tlp.Task{biggest, smallest}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Stats.TotalInstr() <= res[1].Stats.TotalInstr() {
		t.Errorf("EstSize misordered actual cost: big %v <= small %v",
			res[0].Stats.TotalInstr(), res[1].Stats.TotalInstr())
	}
}

func TestCaptureProducesMatchForests(t *testing.T) {
	d := smallDC(t)
	rtfTasks := BuildRTFTasks(d.KB, d.Store, d.Progs.RTF, 3, true)
	res, err := tlp.RunSerial(rtfTasks[:3], 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Log == nil || len(r.Log.Cycles) == 0 {
			t.Fatal("no cost log")
		}
		roots := 0
		for _, c := range r.Log.Cycles {
			roots += len(c.MatchRoots)
		}
		if roots == 0 {
			t.Error("capture on: expected match activation roots")
		}
	}
}

func TestRulesSourcesReadable(t *testing.T) {
	kb := AirportKB()
	for name, src := range map[string]string{
		"rtf": RTFSource(kb), "lcc": LCCSource(kb), "fa": FASource(kb), "model": ModelSource(kb),
	} {
		if len(src) < 500 {
			t.Errorf("%s source suspiciously short", name)
		}
		if _, err := ops5.Parse(src); err != nil {
			t.Errorf("%s source does not parse: %v", name, err)
		}
		if !strings.Contains(src, "literalize") {
			t.Errorf("%s source lacks declarations", name)
		}
	}
}
