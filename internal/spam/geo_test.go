package spam

import (
	"fmt"
	"sync"
	"testing"

	"spampsm/internal/geom"
	"spampsm/internal/scene"
)

// geoRels are all relations Test accepts.
var geoRels = []string{RelIntersects, RelAdjacent, RelNear, RelParallel,
	RelLeadsTo, RelContainedIn, RelAligned}

// TestSPAMDifferentialGeoFastVsExact is the geometry differential
// oracle: a complete four-phase interpretation must be observably
// identical under the default fast path (squared-distance kernels,
// decisive-bound predicates, derived-geometry cache, predicate memo,
// grid partner index) and the reference path (exact Hypot kernels,
// no caches, linear partner scans) — same firings, same simulated
// instruction counts, same pairs, outcomes and model.
func TestSPAMDifferentialGeoFastVsExact(t *testing.T) {
	run := func(exact bool) *Interpretation {
		t.Helper()
		geom.UseExactOnly(exact)
		UseUncachedGeo(exact)
		defer geom.UseExactOnly(false)
		defer UseUncachedGeo(false)
		d := smallDC(t)
		in, err := d.Interpret(InterpretOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	fast := run(false)
	exact := run(true)
	compareInterpretations(t, "fast", fast, "exact", exact)
}

// TestDifferentialGeoMemoVsDirect holds the memoized Test to the
// reference evaluation for every relation over every region pair of a
// scene: identical booleans, identical simulated cost, and repeat
// calls (memo hits) still return both unchanged.
func TestDifferentialGeoMemoVsDirect(t *testing.T) {
	d := smallDC(t)
	st := d.Store
	regions := d.Scene.Regions
	if len(regions) > 30 {
		regions = regions[:30]
	}
	eps := []float64{0, 120, 900}
	for _, rel := range geoRels {
		for _, a := range regions {
			for _, b := range regions {
				for _, e := range eps {
					UseUncachedGeo(true)
					wantOK, wantCost, err := st.Test(rel, a.ID, b.ID, e)
					UseUncachedGeo(false)
					if err != nil {
						t.Fatal(err)
					}
					for pass := 0; pass < 2; pass++ { // miss, then hit
						ok, cost, err := st.Test(rel, a.ID, b.ID, e)
						if err != nil {
							t.Fatal(err)
						}
						if ok != wantOK || cost != wantCost {
							t.Fatalf("%s(%d,%d,%v) pass %d: fast (%v,%v) want (%v,%v)",
								rel, a.ID, b.ID, e, pass, ok, cost, wantOK, wantCost)
						}
					}
				}
			}
		}
	}
}

// TestDifferentialPartnerSearchGridVsScan asserts the uniform-grid
// partner index returns byte-identical slices to the linear
// NearbyFragments scan for every focal, kind and radius.
func TestDifferentialPartnerSearchGridVsScan(t *testing.T) {
	d := smallDC(t)
	st := d.Store
	var frags []*Fragment
	for i, r := range d.Scene.Regions {
		frags = append(frags, &Fragment{ID: i + 1, RegionID: r.ID, Type: r.TrueKind, Conf: 80})
	}
	if len(frags) < gridMinFragments {
		t.Fatalf("scene too small to exercise the grid: %d fragments", len(frags))
	}
	ix := buildFragIndex(st, frags)
	if ix == nil {
		t.Fatal("grid index not built")
	}
	kinds := map[scene.Kind]bool{}
	for _, f := range frags {
		kinds[f.Type] = true
	}
	for _, focal := range frags {
		for k := range kinds {
			for _, radius := range []float64{0, 150, 900, 1e9} {
				want := NearbyFragments(st, focal, k, frags, radius)
				got := ix.query(focal, k, radius)
				if len(got) != len(want) {
					t.Fatalf("focal %d kind %s radius %v: grid %d scan %d",
						focal.ID, k, radius, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("focal %d kind %s radius %v: element %d differs",
							focal.ID, k, radius, i)
					}
				}
			}
		}
	}
	// Uncached mode must refuse to build an index.
	UseUncachedGeo(true)
	defer UseUncachedGeo(false)
	if buildFragIndex(st, frags) != nil {
		t.Fatal("grid index built in uncached-geo mode")
	}
}

// TestConcurrentGeoMemo hammers the predicate memo from parallel
// goroutines mimicking concurrent task RHS execution; run under -race
// by make oracle. Every answer must match the reference path.
func TestConcurrentGeoMemo(t *testing.T) {
	d := smallDC(t)
	st := d.Store
	regions := d.Scene.Regions
	if len(regions) > 16 {
		regions = regions[:16]
	}
	type ans struct {
		ok   bool
		cost float64
	}
	want := map[string]ans{}
	UseUncachedGeo(true)
	for _, rel := range geoRels {
		for _, a := range regions {
			for _, b := range regions {
				ok, cost, err := st.Test(rel, a.ID, b.ID, 300)
				if err != nil {
					t.Fatal(err)
				}
				want[fmt.Sprintf("%s/%d/%d", rel, a.ID, b.ID)] = ans{ok, cost}
			}
		}
	}
	UseUncachedGeo(false)
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for pass := 0; pass < 3; pass++ {
				for _, rel := range geoRels {
					for _, a := range regions {
						for _, b := range regions {
							ok, cost, err := st.Test(rel, a.ID, b.ID, 300)
							if err != nil {
								errc <- err
								return
							}
							exp := want[fmt.Sprintf("%s/%d/%d", rel, a.ID, b.ID)]
							if ok != exp.ok || cost != exp.cost {
								errc <- fmt.Errorf("%s(%d,%d): (%v,%v) want (%v,%v)",
									rel, a.ID, b.ID, ok, cost, exp.ok, exp.cost)
								return
							}
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestGeoMemoCapEviction pins the predicate memo's bound: with a tiny
// cap the store must stay at or below it while answers remain
// identical to the uncached reference, the eviction counter must
// advance, and re-querying an evicted key must still produce the
// reference answer (recomputed, not stale).
func TestGeoMemoCapEviction(t *testing.T) {
	d := smallDC(t)
	st := d.Store
	regions := d.Scene.Regions
	if len(regions) > 20 {
		regions = regions[:20]
	}
	const cap = 8
	st.SetGeoMemoCap(cap)
	defer st.SetGeoMemoCap(0)

	type ans struct {
		ok   bool
		cost float64
	}
	want := map[geoKey]ans{}
	UseUncachedGeo(true)
	for _, rel := range geoRels {
		for _, a := range regions {
			for _, b := range regions {
				ok, cost, err := st.Test(rel, a.ID, b.ID, 300)
				if err != nil {
					t.Fatal(err)
				}
				want[geoKey{a.ID, b.ID, rel, 300}] = ans{ok, cost}
			}
		}
	}
	UseUncachedGeo(false)

	before := st.GeoStats()
	for pass := 0; pass < 2; pass++ {
		for _, rel := range geoRels {
			for _, a := range regions {
				for _, b := range regions {
					ok, cost, err := st.Test(rel, a.ID, b.ID, 300)
					if err != nil {
						t.Fatal(err)
					}
					exp := want[geoKey{a.ID, b.ID, rel, 300}]
					if ok != exp.ok || cost != exp.cost {
						t.Fatalf("%s(%d,%d) pass %d under cap: (%v,%v) want (%v,%v)",
							rel, a.ID, b.ID, pass, ok, cost, exp.ok, exp.cost)
					}
					if s := st.GeoStats(); s.Entries > cap {
						t.Fatalf("memo holds %d entries, cap %d", s.Entries, cap)
					}
				}
			}
		}
	}
	after := st.GeoStats()
	if after.Cap != cap {
		t.Errorf("GeoStats cap = %d, want %d", after.Cap, cap)
	}
	if after.Evictions <= before.Evictions {
		t.Errorf("evictions did not advance: %d -> %d", before.Evictions, after.Evictions)
	}
	if after.Misses <= before.Misses {
		t.Errorf("misses did not advance: %d -> %d", before.Misses, after.Misses)
	}
	// The sweep's working set dwarfs the cap, so FIFO eviction kills
	// every entry before its re-reference: the sweep itself scores no
	// hits. An immediate back-to-back repeat must hit.
	if _, _, err := st.Test(RelNear, regions[0].ID, regions[1].ID, 300); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Test(RelNear, regions[0].ID, regions[1].ID, 300); err != nil {
		t.Fatal(err)
	}
	if s := st.GeoStats(); s.Hits <= after.Hits {
		t.Errorf("back-to-back repeat did not hit the memo: %d -> %d", after.Hits, s.Hits)
	}
}

// BenchmarkPartnerSearch measures the grid-indexed partner query
// against the linear fragment scan it replaces.
func BenchmarkPartnerSearch(b *testing.B) {
	p := scene.DC.Scale(0.5)
	p.Name = "DC-small"
	d, err := NewDataset(p)
	if err != nil {
		b.Fatal(err)
	}
	st := d.Store
	var frags []*Fragment
	for i, r := range d.Scene.Regions {
		frags = append(frags, &Fragment{ID: i + 1, RegionID: r.ID, Type: r.TrueKind, Conf: 80})
	}
	kinds := []scene.Kind{}
	seen := map[scene.Kind]bool{}
	for _, f := range frags {
		if !seen[f.Type] {
			seen[f.Type] = true
			kinds = append(kinds, f.Type)
		}
	}
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		n := 0
		for i := 0; i < b.N; i++ {
			for _, focal := range frags {
				for _, k := range kinds {
					n += len(NearbyFragments(st, focal, k, frags, 300))
				}
			}
		}
		_ = n
	})
	b.Run("grid", func(b *testing.B) {
		ix := buildFragIndex(st, frags)
		if ix == nil {
			b.Fatal("no index")
		}
		b.ReportAllocs()
		b.ResetTimer()
		n := 0
		for i := 0; i < b.N; i++ {
			for _, focal := range frags {
				for _, k := range kinds {
					n += len(ix.query(focal, k, 300))
				}
			}
		}
		_ = n
	})
}
