package spam

import (
	"testing"

	"spampsm/internal/geom"
	"spampsm/internal/scene"
)

// End-to-end benchmark: a scaled-down spambench-style interpretation
// (all four phases over the DC scene at half scale), indexed vs naive.
// This is the wall-clock number the ISSUE's ≥2× acceptance criterion
// is judged on for real workloads: it includes scene generation, task
// building, rule compilation and RHS execution, so the matcher's win
// is diluted relative to the rete microbenchmarks.

func benchInterpret(b *testing.B, naive bool) {
	UseNaiveMatch(naive)
	defer UseNaiveMatch(false)
	p := scene.DC.Scale(0.5)
	p.Name = "DC-small"
	b.ReportAllocs()
	b.ResetTimer()
	firings := 0
	for i := 0; i < b.N; i++ {
		d, err := NewDataset(p)
		if err != nil {
			b.Fatal(err)
		}
		in, err := d.Interpret(InterpretOptions{Workers: 2})
		if err != nil {
			b.Fatal(err)
		}
		firings += in.TotalFirings()
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(firings)/sec, "firings/s")
	}
}

func BenchmarkInterpretDC(b *testing.B) {
	b.Run("indexed", func(b *testing.B) { benchInterpret(b, false) })
	b.Run("naive", func(b *testing.B) { benchInterpret(b, true) })
}

// BenchmarkInterpretDCSeed is the end-to-end seed-distribution A/B:
// the same interpretation with task working memories loaded per-WME
// (UseUnbatchedSeed, the pre-batching behavior) versus batched
// AssertBatch with the template route memo (the default). Measured in
// one run so machine noise cancels out of the ratio.
func BenchmarkInterpretDCSeed(b *testing.B) {
	run := func(b *testing.B, unbatched bool) {
		UseUnbatchedSeed(unbatched)
		defer UseUnbatchedSeed(false)
		benchInterpret(b, false)
	}
	b.Run("unbatched", func(b *testing.B) { run(b, true) })
	b.Run("batched", func(b *testing.B) { run(b, false) })
}

// BenchmarkInterpretDCGeo is the end-to-end geometry A/B: the same
// interpretation on the reference geometry path (exact Hypot kernels,
// no predicate memo, no derived cache, linear partner scans — the
// pre-fast-path behavior) versus the default fast path. Measured in
// one run so machine noise cancels out of the ratio.
func BenchmarkInterpretDCGeo(b *testing.B) {
	run := func(b *testing.B, exact bool) {
		geom.UseExactOnly(exact)
		UseUncachedGeo(exact)
		defer geom.UseExactOnly(false)
		defer UseUncachedGeo(false)
		benchInterpret(b, false)
	}
	b.Run("exact", func(b *testing.B) { run(b, true) })
	b.Run("fast", func(b *testing.B) { run(b, false) })
}
