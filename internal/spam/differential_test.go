package spam

import (
	"reflect"
	"testing"
)

// TestSPAMDifferentialIndexedVsNaive is the full-rule-set differential
// oracle: a complete four-phase interpretation (RTF, LCC, FA, MODEL)
// over the scaled DC scene must be observably identical under the
// indexed (default) and naive matchers — same firings, same simulated
// instruction counts per phase, same fragments, consistent pairs,
// outcomes, functional areas, and final model.
func TestSPAMDifferentialIndexedVsNaive(t *testing.T) {
	run := func(naive bool) *Interpretation {
		t.Helper()
		UseNaiveMatch(naive)
		defer UseNaiveMatch(false)
		d := smallDC(t)
		in, err := d.Interpret(InterpretOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	indexed := run(false)
	naive := run(true)

	if len(indexed.Phases) != len(naive.Phases) {
		t.Fatalf("phase count: indexed %d naive %d", len(indexed.Phases), len(naive.Phases))
	}
	for i := range indexed.Phases {
		ip, np := &indexed.Phases[i], &naive.Phases[i]
		if ip.Phase != np.Phase || ip.Firings != np.Firings || ip.Tasks != np.Tasks {
			t.Errorf("phase %s: firings/tasks differ: indexed %+v naive %+v", ip.Phase, ip, np)
		}
		if ip.Instr != np.Instr || ip.MatchInstr != np.MatchInstr {
			t.Errorf("phase %s: simulated instructions differ: indexed (%.0f, %.0f) naive (%.0f, %.0f)",
				ip.Phase, ip.Instr, ip.MatchInstr, np.Instr, np.MatchInstr)
		}
	}
	if !reflect.DeepEqual(indexed.Fragments, naive.Fragments) {
		t.Errorf("fragments differ: indexed %d naive %d", len(indexed.Fragments), len(naive.Fragments))
	}
	if !reflect.DeepEqual(indexed.Pairs, naive.Pairs) {
		t.Errorf("consistent pairs differ: indexed %d naive %d", len(indexed.Pairs), len(naive.Pairs))
	}
	if !reflect.DeepEqual(indexed.Outcomes, naive.Outcomes) {
		t.Errorf("LCC outcomes differ: indexed %d naive %d", len(indexed.Outcomes), len(naive.Outcomes))
	}
	if !reflect.DeepEqual(indexed.FAs, naive.FAs) {
		t.Errorf("functional areas differ: indexed %d naive %d", len(indexed.FAs), len(naive.FAs))
	}
	if indexed.ModelFound != naive.ModelFound || !reflect.DeepEqual(indexed.Model, naive.Model) {
		t.Errorf("final models differ: indexed %+v naive %+v", indexed.Model, naive.Model)
	}
	if indexed.TotalFirings() == 0 {
		t.Fatal("interpretation fired nothing: differential test is vacuous")
	}
}
