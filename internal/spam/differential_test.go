package spam

import (
	"reflect"
	"testing"
)

// TestSPAMDifferentialIndexedVsNaive is the full-rule-set differential
// oracle: a complete four-phase interpretation (RTF, LCC, FA, MODEL)
// over the scaled DC scene must be observably identical under the
// indexed (default) and naive matchers — same firings, same simulated
// instruction counts per phase, same fragments, consistent pairs,
// outcomes, functional areas, and final model.
func TestSPAMDifferentialIndexedVsNaive(t *testing.T) {
	run := func(naive bool) *Interpretation {
		t.Helper()
		UseNaiveMatch(naive)
		defer UseNaiveMatch(false)
		d := smallDC(t)
		in, err := d.Interpret(InterpretOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	indexed := run(false)
	naive := run(true)
	compareInterpretations(t, "indexed", indexed, "naive", naive)
}

// compareInterpretations asserts that two full interpretations are
// observably identical: same phase statistics (firings, tasks,
// simulated instruction counts), fragments, consistent pairs, LCC
// outcomes, functional areas, and final model.
func compareInterpretations(t *testing.T, aName string, a *Interpretation, bName string, b *Interpretation) {
	t.Helper()
	if len(a.Phases) != len(b.Phases) {
		t.Fatalf("phase count: %s %d %s %d", aName, len(a.Phases), bName, len(b.Phases))
	}
	for i := range a.Phases {
		ap, bp := &a.Phases[i], &b.Phases[i]
		if ap.Phase != bp.Phase || ap.Firings != bp.Firings || ap.Tasks != bp.Tasks {
			t.Errorf("phase %s: firings/tasks differ: %s %+v %s %+v", ap.Phase, aName, ap, bName, bp)
		}
		if ap.Instr != bp.Instr || ap.MatchInstr != bp.MatchInstr {
			t.Errorf("phase %s: simulated instructions differ: %s (%.0f, %.0f) %s (%.0f, %.0f)",
				ap.Phase, aName, ap.Instr, ap.MatchInstr, bName, bp.Instr, bp.MatchInstr)
		}
	}
	if !reflect.DeepEqual(a.Fragments, b.Fragments) {
		t.Errorf("fragments differ: %s %d %s %d", aName, len(a.Fragments), bName, len(b.Fragments))
	}
	if !reflect.DeepEqual(a.Pairs, b.Pairs) {
		t.Errorf("consistent pairs differ: %s %d %s %d", aName, len(a.Pairs), bName, len(b.Pairs))
	}
	if !reflect.DeepEqual(a.Outcomes, b.Outcomes) {
		t.Errorf("LCC outcomes differ: %s %d %s %d", aName, len(a.Outcomes), bName, len(b.Outcomes))
	}
	if !reflect.DeepEqual(a.FAs, b.FAs) {
		t.Errorf("functional areas differ: %s %d %s %d", aName, len(a.FAs), bName, len(b.FAs))
	}
	if a.ModelFound != b.ModelFound || !reflect.DeepEqual(a.Model, b.Model) {
		t.Errorf("final models differ: %s %+v %s %+v", aName, a.Model, bName, b.Model)
	}
	if a.TotalFirings() == 0 {
		t.Fatal("interpretation fired nothing: differential test is vacuous")
	}
}
