package machine

import (
	"math"
	"testing"

	"spampsm/internal/faults"
)

func uniform(n int, d float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d
	}
	return out
}

// TestOneDeathRecoveryCurve is the acceptance scenario: 140 uniform
// tasks on P=14, processor 0 dies mid-run. The numbers are exact and
// hand-derivable: without failure every processor runs 10 tasks
// (makespan 10e6, speedup 14); with processor 0 dying at t=3.5e6 it
// completes 3 tasks and wastes half a task, the remaining 137 tasks
// spread over 13 survivors (7 of them run 11 tasks), so the makespan
// is 11e6 and the speedup drops to 140/11 ≈ 12.73.
func TestOneDeathRecoveryCurve(t *testing.T) {
	durs := uniform(140, 1e6)
	ov := Overheads{}
	clean := Run(durs, 14, ov)
	if clean.Makespan != 10e6 {
		t.Fatalf("clean makespan = %v, want 10e6", clean.Makespan)
	}
	failures := []faults.ProcFailure{{Proc: 0, At: 3.5e6}}
	sched, rec := RunWithFailures(durs, 14, ov, failures)
	if sched.Makespan != 11e6 {
		t.Errorf("degraded makespan = %v, want 11e6", sched.Makespan)
	}
	if got := 140e6 / sched.Makespan; math.Abs(got-140.0/11) > 1e-9 {
		t.Errorf("speedup = %v, want %v", got, 140.0/11)
	}
	if rec.WastedInstr != 0.5e6 {
		t.Errorf("wasted = %v, want 0.5e6", rec.WastedInstr)
	}
	if rec.Requeued != 1 || rec.DeadProcs != 1 || rec.Retries != 1 {
		t.Errorf("recovery = %+v, want 1 requeue / 1 dead / 1 retry", rec)
	}
	// The dead processor's busy time includes its completed tasks plus
	// the wasted partial work.
	if sched.Busy[0] != 3.5e6 {
		t.Errorf("dead proc busy = %v, want 3.5e6", sched.Busy[0])
	}
}

func TestFailuresDeterministic(t *testing.T) {
	durs := []float64{5e6, 1e6, 3e6, 2e6, 8e6, 1e6, 1e6, 4e6, 2e6, 6e6, 1e6, 2e6}
	fs := []faults.ProcFailure{{Proc: 1, At: 4e6}, {Proc: 3, At: 9e6}}
	a, ra := RunWithFailures(durs, 4, DefaultOverheads, fs)
	b, rb := RunWithFailures(durs, 4, DefaultOverheads, fs)
	if a.Makespan != b.Makespan || ra != rb {
		t.Errorf("failure scheduling not deterministic: %v/%v vs %v/%v", a.Makespan, ra, b.Makespan, rb)
	}
	for i := range a.PerTask {
		if a.PerTask[i] != b.PerTask[i] {
			t.Fatalf("per-task completion %d differs", i)
		}
	}
}

// TestWorkConservation: total busy time equals the useful work of all
// completed tasks plus the wasted partial work.
func TestWorkConservation(t *testing.T) {
	durs := []float64{5e6, 1e6, 3e6, 2e6, 8e6, 1e6, 7e6, 4e6, 2e6, 6e6}
	ov := Overheads{QueuePerTask: 1e4}
	fs := []faults.ProcFailure{{Proc: 0, At: 6e6}, {Proc: 2, At: 3e6}}
	sched, rec := RunWithFailures(durs, 4, ov, fs)
	var useful float64
	for _, d := range durs {
		useful += d + ov.QueuePerTask
	}
	var busy float64
	for _, b := range sched.Busy {
		busy += b
	}
	if math.Abs(busy-(useful+rec.WastedInstr)) > 1 {
		t.Errorf("work not conserved: busy=%v useful=%v wasted=%v", busy, useful, rec.WastedInstr)
	}
	if rec.DeadProcs != 2 {
		t.Errorf("dead procs = %d, want 2", rec.DeadProcs)
	}
}

func TestNoFailuresMatchesRun(t *testing.T) {
	durs := []float64{5e6, 1e6, 3e6, 2e6, 8e6, 1e6}
	plain := Run(durs, 3, DefaultOverheads)
	sched, rec := RunWithFailures(durs, 3, DefaultOverheads, nil)
	if sched.Makespan != plain.Makespan {
		t.Errorf("failure-free RunWithFailures diverges: %v vs %v", sched.Makespan, plain.Makespan)
	}
	if rec.WastedInstr != 0 || rec.Requeued != 0 || rec.DeadProcs != 0 {
		t.Errorf("phantom recovery: %+v", rec)
	}
}

func TestAllProcessorsDie(t *testing.T) {
	durs := uniform(10, 1e6)
	fs := []faults.ProcFailure{{Proc: 0, At: 1.5e6}, {Proc: 1, At: 0.5e6}}
	sched, rec := RunWithFailures(durs, 2, Overheads{}, fs)
	if !math.IsInf(sched.Makespan, 1) {
		t.Errorf("dead cluster makespan = %v, want +Inf", sched.Makespan)
	}
	if rec.DeadProcs != 2 {
		t.Errorf("dead procs = %d, want 2", rec.DeadProcs)
	}
	if !math.IsInf(sched.PerTask[len(sched.PerTask)-1], 1) {
		t.Error("unfinished tasks must complete at +Inf")
	}
}

// TestPlanDrivenFailures ties the faults plan to the simulator: the
// plan's drawn failures degrade the speedup deterministically.
func TestPlanDrivenFailures(t *testing.T) {
	durs := uniform(140, 1e6)
	clean := Run(durs, 14, Overheads{}).Makespan
	plan := faults.New(faults.Config{Seed: 1990})
	fs := plan.ProcFailures(14, 0.2, clean)
	if len(fs) == 0 {
		t.Skip("seed drew no failures at rate 0.2 (adjust seed)")
	}
	s1, r1 := RunWithFailures(durs, 14, Overheads{}, fs)
	s2, r2 := RunWithFailures(durs, 14, Overheads{}, plan.ProcFailures(14, 0.2, clean))
	if s1.Makespan != s2.Makespan || r1 != r2 {
		t.Error("plan-driven failures not reproducible")
	}
	if s1.Makespan <= clean {
		t.Errorf("dying processors cannot speed the run up: %v <= %v", s1.Makespan, clean)
	}
}
