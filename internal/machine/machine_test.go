package machine

import (
	"math"
	"testing"
	"testing/quick"

	"spampsm/internal/ops5"
	"spampsm/internal/rete"
)

func TestInstrSecConversion(t *testing.T) {
	if got := InstrToSec(1.5e6); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("1.5M instructions = %v s, want 1", got)
	}
	if got := SecToInstr(InstrToSec(777)); math.Abs(got-777) > 1e-9 {
		t.Error("round trip broken")
	}
}

func TestRunSingleProcessorSums(t *testing.T) {
	d := []float64{10, 20, 30}
	s := Run(d, 1, Overheads{})
	if s.Makespan != 60 {
		t.Errorf("makespan = %v", s.Makespan)
	}
	if s.Utilization() != 1.0 {
		t.Errorf("utilization = %v", s.Utilization())
	}
	if len(s.PerTask) != 3 || s.PerTask[2] != 60 {
		t.Errorf("per-task = %v", s.PerTask)
	}
}

func TestRunQueueDiscipline(t *testing.T) {
	// Queue order: [9, 1, 1, 1] on 2 processors. P0 takes 9; P1 takes
	// the three 1s. Makespan 9, not 6 (no preemption, no reordering).
	s := Run([]float64{9, 1, 1, 1}, 2, Overheads{})
	if s.Makespan != 9 {
		t.Errorf("makespan = %v, want 9", s.Makespan)
	}
	if s.Busy[0] != 9 || s.Busy[1] != 3 {
		t.Errorf("busy = %v", s.Busy)
	}
}

func TestTailEndEffect(t *testing.T) {
	// A big task at the END of the queue wrecks utilization — the
	// paper's observed tail-end effect — while the same task at the
	// FRONT schedules well. This is the motivation for the LPT queue
	// policy in the tlp package.
	small := make([]float64, 12)
	for i := range small {
		small[i] = 1
	}
	tail := append(append([]float64{}, small...), 10.0)
	front := append([]float64{10}, small...)
	st := Run(tail, 4, Overheads{})
	sf := Run(front, 4, Overheads{})
	if st.Makespan <= sf.Makespan {
		t.Errorf("tail-end: tail %v should be worse than front %v", st.Makespan, sf.Makespan)
	}
	if sf.Makespan != 10 {
		t.Errorf("front-loaded makespan = %v, want 10", sf.Makespan)
	}
}

func TestOverheads(t *testing.T) {
	s := Run([]float64{100, 100}, 2, Overheads{QueuePerTask: 5, Fork: 7})
	// Each proc: fork 7 + task 100 + queue 5 = 112.
	if s.Makespan != 112 {
		t.Errorf("makespan = %v, want 112", s.Makespan)
	}
}

func synthTask(cycles int, actCost float64, matchWidth int) Task {
	log := &ops5.CostLog{Init: 50}
	for i := 0; i < cycles; i++ {
		var roots []*rete.Activation
		var match float64
		for j := 0; j < matchWidth; j++ {
			a := &rete.Activation{Cost: 80}
			roots = append(roots, a)
			match += 80
		}
		log.Cycles = append(log.Cycles, ops5.CycleCost{
			Resolve: 20, Act: actCost, Match: match, MatchRoots: roots,
		})
	}
	return Task{ID: "synth", Log: log}
}

func synthExperiment(n int) *Experiment {
	var tasks []Task
	for i := 0; i < n; i++ {
		tasks = append(tasks, synthTask(30, 1000, 10))
	}
	e := NewExperiment(tasks)
	e.Overheads = Overheads{QueuePerTask: 100}
	return e
}

func TestTLPNearLinear(t *testing.T) {
	e := synthExperiment(280)
	s := e.TLPSeries("tlp", 14)
	y1, _ := s.YAt(1)
	if math.Abs(y1-1) > 1e-9 {
		t.Errorf("speedup at 1 proc = %v, want 1", y1)
	}
	y14, _ := s.YAt(14)
	if y14 < 11 || y14 > 14 {
		t.Errorf("speedup at 14 procs = %v, want near linear (>= 11)", y14)
	}
	// Monotone nondecreasing.
	for p := 2; p <= 14; p++ {
		ya, _ := s.YAt(float64(p - 1))
		yb, _ := s.YAt(float64(p))
		if yb < ya-1e-9 {
			t.Errorf("TLP speedup decreased at %d procs: %v -> %v", p, ya, yb)
		}
	}
}

func TestMatchSeriesBounded(t *testing.T) {
	e := synthExperiment(20)
	limit := e.AmdahlLimit()
	s := e.MatchSeries("match", 13)
	if s.MaxY() > limit {
		t.Errorf("match speedup %v exceeds Amdahl limit %v", s.MaxY(), limit)
	}
	y0, _ := s.YAt(0)
	if math.Abs(y0-1) > 1e-9 {
		t.Errorf("match speedup at 0 = %v, want 1 (baseline)", y0)
	}
	if s.MaxY() <= 1.05 {
		t.Errorf("match parallelism should help some: max %v", s.MaxY())
	}
}

func TestMultiplicativeComposition(t *testing.T) {
	e := synthExperiment(120)
	for _, cfg := range []Config{{2, 1}, {4, 2}, {3, 3}} {
		achieved := e.Speedup(cfg)
		predicted := e.PredictedCombined(cfg)
		rel := math.Abs(achieved-predicted) / predicted
		if rel > 0.15 {
			t.Errorf("config %+v: achieved %v vs predicted %v (%.0f%% apart)",
				cfg, achieved, predicted, rel*100)
		}
	}
}

func TestConfigProcessors(t *testing.T) {
	if (Config{TaskProcs: 4, MatchProcs: 2}).Processors() != 12 {
		t.Error("4 + 4*2 = 12")
	}
	if (Config{TaskProcs: 4, MatchProcs: 3}).Processors() != 16 {
		t.Error("4 + 4*3 = 16")
	}
}

func TestMatchFraction(t *testing.T) {
	e := synthExperiment(5)
	f := e.MatchFraction()
	if f <= 0 || f >= 1 {
		t.Errorf("match fraction = %v", f)
	}
	limit := e.AmdahlLimit()
	if math.Abs(limit-1/(1-f)) > 1e-6 {
		t.Errorf("limit %v inconsistent with fraction %v", limit, f)
	}
}

func TestRunSynchronousWaves(t *testing.T) {
	// 4 tasks on 2 procs: waves (3,1) and (2,2) → 3 + 2 = 5.
	s := RunSynchronous([]float64{3, 1, 2, 2}, 2, Overheads{})
	if s.Makespan != 5 {
		t.Errorf("makespan = %v, want 5", s.Makespan)
	}
	if s.PerTask[0] != 3 || s.PerTask[3] != 5 {
		t.Errorf("per-task = %v", s.PerTask)
	}
}

func TestSynchronousSaturatesUnderVariance(t *testing.T) {
	// The Section 3.2 claim: with variance, synchronous firing loses to
	// asynchronous; without variance they coincide.
	varied := make([]float64, 64)
	uniform := make([]float64, 64)
	s := uint64(5)
	var total float64
	for i := range varied {
		s = s*6364136223846793005 + 1442695040888963407
		varied[i] = float64(s%1000) + 50
		total += varied[i]
	}
	for i := range uniform {
		uniform[i] = total / float64(len(uniform))
	}
	async := Run(varied, 8, Overheads{}).Makespan
	sync := RunSynchronous(varied, 8, Overheads{}).Makespan
	if sync <= async {
		t.Errorf("sync (%v) should be slower than async (%v) under variance", sync, async)
	}
	asyncU := Run(uniform, 8, Overheads{}).Makespan
	syncU := RunSynchronous(uniform, 8, Overheads{}).Makespan
	if math.Abs(syncU-asyncU) > 1e-6 {
		t.Errorf("without variance sync (%v) should equal async (%v)", syncU, asyncU)
	}
}

func TestSynchronousWorkConserved(t *testing.T) {
	durs := []float64{5, 1, 9, 2, 4}
	s := RunSynchronous(durs, 3, Overheads{QueuePerTask: 1})
	var busy, want float64
	for _, b := range s.Busy {
		busy += b
	}
	for _, d := range durs {
		want += d + 1
	}
	if math.Abs(busy-want) > 1e-9 {
		t.Errorf("busy %v != work %v", busy, want)
	}
}

func TestQuickScheduleInvariants(t *testing.T) {
	f := func(seed uint8, procs8 uint8) bool {
		procs := int(procs8%15) + 1
		s := uint64(seed) + 1
		durs := make([]float64, 40)
		var sum float64
		for i := range durs {
			s = s*6364136223846793005 + 1442695040888963407
			durs[i] = float64(s%1000) + 1
			sum += durs[i]
		}
		sched := Run(durs, procs, Overheads{})
		// Makespan within [sum/procs, sum]; utilization within (0,1].
		if sched.Makespan < sum/float64(procs)-1e-9 || sched.Makespan > sum+1e-9 {
			return false
		}
		u := sched.Utilization()
		return u > 0 && u <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickWorkConserved(t *testing.T) {
	f := func(seed uint8, procs8 uint8) bool {
		procs := int(procs8%8) + 1
		s := uint64(seed) + 7
		durs := make([]float64, 25)
		var sum float64
		for i := range durs {
			s = s*2862933555777941757 + 3037000493
			durs[i] = float64(s%500) + 1
			sum += durs[i]
		}
		sched := Run(durs, procs, Overheads{})
		var busy float64
		for _, b := range sched.Busy {
			busy += b
		}
		return math.Abs(busy-sum) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
