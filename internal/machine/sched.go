// Memory-aware task scheduling on the simulated machine. The
// decomposition is a tree (scene → phase → focal-class group →
// task), and the scheduling literature on exactly this shape —
// Marchal/Sinnen/Vivien, "Scheduling tree-shaped task graphs to
// minimize memory and makespan"; Eyraud-Dubois et al., "Parallel
// scheduling of task trees with limited memory" — shows that the
// traversal order trades peak memory against makespan, and that a
// memory budget turns list scheduling into an admission problem:
// defer dispatch when the aggregate in-flight footprint would exceed
// the budget.
//
// Every policy permutes only the queue order; each task's simulated
// execution (and its real per-task result in internal/tlp) is
// byte-identical across policies — the working-memory-distribution
// independence property, enforced by the differential oracles.
package machine

import (
	"container/heap"
	"fmt"
	"sort"

	"spampsm/internal/pmatch"
)

// Policy selects the order in which the control process enqueues
// tasks. The vocabulary is shared with tlp.QueuePolicy — one flag
// surface drives both the simulator and the real runtime.
type Policy uint8

const (
	// PolicyFIFO is the paper's order: tasks dispatched exactly as
	// generated. With no memory budget, RunSpecs reproduces Run
	// byte-for-byte under this policy.
	PolicyFIFO Policy = iota
	// PolicyLargest is longest-processing-time-first: sorting the
	// queue by decreasing duration removes the tail-end effect.
	PolicyLargest
	// PolicyPostOrder is the memory-peak-minimizing tree traversal:
	// tasks are emitted one decomposition subtree (Group) at a time,
	// subtrees in decreasing aggregate footprint, largest-footprint
	// tasks first within each subtree — the Marchal et al. post-order
	// by subtree weight, flattened onto the shared queue. Finishing
	// one subtree before starting the next bounds how many subtrees'
	// working memories are ever simultaneously resident.
	PolicyPostOrder
)

var policyNames = map[Policy]string{
	PolicyFIFO:      "fifo",
	PolicyLargest:   "largest",
	PolicyPostOrder: "postorder",
}

func (p Policy) String() string {
	if s, ok := policyNames[p]; ok {
		return s
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// ParsePolicy parses the shared policy vocabulary: "fifo", "largest",
// "postorder".
func ParsePolicy(s string) (Policy, error) {
	for p, name := range policyNames {
		if s == name {
			return p, nil
		}
	}
	return PolicyFIFO, fmt.Errorf("machine: unknown scheduling policy %q (want fifo, largest or postorder)", s)
}

// Policies lists every policy, for experiment sweeps.
func Policies() []Policy { return []Policy{PolicyFIFO, PolicyLargest, PolicyPostOrder} }

// TaskSpec is one task as the scheduler sees it: a duration, a
// modeled memory footprint, and the decomposition subtree it belongs
// to.
type TaskSpec struct {
	Dur   float64 // simulated instructions (match processes applied)
	Mem   float64 // modeled peak footprint, ops5.MemStats.PeakBytes
	Group string  // decomposition subtree (focal-class group)
}

// Specs converts tasks to scheduler specs under m dedicated match
// processes per task process, pulling each task's footprint from its
// cost log's memory record.
func Specs(tasks []Task, m int, model pmatch.Model) []TaskSpec {
	out := make([]TaskSpec, len(tasks))
	for i, t := range tasks {
		out[i] = TaskSpec{Dur: model.TaskInstr(t.Log, m), Mem: t.Log.Mem.PeakBytes, Group: t.Group}
	}
	return out
}

// Order returns the dispatch order (a permutation of spec indices)
// under the given policy. Ties break on the original queue index, so
// every policy is deterministic.
func Order(specs []TaskSpec, pol Policy) []int {
	order := make([]int, len(specs))
	for i := range order {
		order[i] = i
	}
	switch pol {
	case PolicyFIFO:
		return order
	case PolicyLargest:
		sort.Slice(order, func(i, j int) bool {
			a, b := order[i], order[j]
			if specs[a].Dur != specs[b].Dur {
				return specs[a].Dur > specs[b].Dur
			}
			return a < b
		})
		return order
	case PolicyPostOrder:
		// Aggregate footprint per subtree, subtrees kept in
		// first-appearance order for deterministic tie-breaks.
		rank := map[string]int{}
		var mem []float64
		for _, s := range specs {
			r, ok := rank[s.Group]
			if !ok {
				r = len(mem)
				rank[s.Group] = r
				mem = append(mem, 0)
			}
			mem[r] += s.Mem
		}
		sort.Slice(order, func(i, j int) bool {
			a, b := order[i], order[j]
			ra, rb := rank[specs[a].Group], rank[specs[b].Group]
			if ra != rb {
				if mem[ra] != mem[rb] {
					return mem[ra] > mem[rb]
				}
				return ra < rb
			}
			if specs[a].Mem != specs[b].Mem {
				return specs[a].Mem > specs[b].Mem
			}
			return a < b
		})
		return order
	}
	return order
}

// flightHeap orders in-flight tasks by completion time (index
// tiebreak), for releasing memory reservations in event order.
type flightEntry struct {
	end float64
	mem float64
	seq int
}
type flightHeap []flightEntry

func (h flightHeap) Len() int { return len(h) }
func (h flightHeap) Less(i, j int) bool {
	if h[i].end != h[j].end {
		return h[i].end < h[j].end
	}
	return h[i].seq < h[j].seq
}
func (h flightHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *flightHeap) Push(x interface{}) { *h = append(*h, x.(flightEntry)) }
func (h *flightHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// RunSpecs simulates T task processes pulling tasks in the given
// dispatch order, under an optional memory budget (simulated bytes;
// 0 means unbounded). Whenever a processor frees it takes the next
// task — but if admitting the task would push the aggregate in-flight
// footprint past the budget, dispatch stalls until enough running
// tasks complete (memory-bounded list scheduling). A single task
// larger than the whole budget drains every in-flight task and then
// runs alone, so the schedule never deadlocks; its overrun is visible
// in PeakMem.
//
// With order = 0..n-1 (FIFO) and no budget, RunSpecs performs the
// same float arithmetic as Run and returns byte-identical schedules.
func RunSpecs(specs []TaskSpec, order []int, taskProcs int, ov Overheads, memBudget float64) Schedule {
	if taskProcs < 1 {
		taskProcs = 1
	}
	h := make(procHeap, taskProcs)
	busy := make([]float64, taskProcs)
	for i := range h {
		h[i] = procEntry{free: ov.Fork, idx: i}
	}
	heap.Init(&h)
	per := make([]float64, len(specs))
	var makespan, inUse, peak float64
	var flight flightHeap
	waits := 0
	for seq, ti := range order {
		s := specs[ti]
		p := heap.Pop(&h).(procEntry)
		start := p.free
		// Release every reservation whose task completed by now.
		for len(flight) > 0 && flight[0].end <= start {
			inUse -= heap.Pop(&flight).(flightEntry).mem
		}
		if memBudget > 0 && inUse+s.Mem > memBudget && len(flight) > 0 {
			waits++
			for inUse+s.Mem > memBudget && len(flight) > 0 {
				e := heap.Pop(&flight).(flightEntry)
				inUse -= e.mem
				if e.end > start {
					start = e.end
				}
			}
		}
		cost := s.Dur + ov.QueuePerTask
		end := start + cost
		busy[p.idx] += cost
		per[ti] = end
		if end > makespan {
			makespan = end
		}
		inUse += s.Mem
		if inUse > peak {
			peak = inUse
		}
		heap.Push(&flight, flightEntry{end: end, mem: s.Mem, seq: seq})
		p.free = end
		heap.Push(&h, p)
	}
	return Schedule{Makespan: makespan, Busy: busy, PerTask: per, PeakMem: peak, ThrottleWaits: waits}
}

// RunPolicy orders specs under a policy and simulates the schedule.
func RunPolicy(specs []TaskSpec, taskProcs int, ov Overheads, pol Policy, memBudget float64) Schedule {
	return RunSpecs(specs, Order(specs, pol), taskProcs, ov, memBudget)
}

// Specs converts the experiment's tasks to scheduler specs under m
// dedicated match processes.
func (e *Experiment) Specs(m int) []TaskSpec {
	return Specs(e.Tasks, m, e.Model)
}
