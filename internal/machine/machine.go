// Package machine is the deterministic virtual-time multiprocessor on
// which the SPAM/PSM parallelism experiments run. The paper's machine —
// a 16-processor Encore Multimax of ~1.5 MIPS NS32332 processors — is
// not available, so tasks are *executed* once on the real engine to
// produce cost logs, and those logs are then list-scheduled onto P
// simulated processors exactly the way the SPAM/PSM control process
// dispatches tasks from its queue: each free task process takes the
// next task from the queue.
//
// The simulation composes both axes of parallelism: T task processes
// pull whole tasks, and each task process may own M dedicated match
// processes that shrink its tasks' durations per the pmatch model.
package machine

import (
	"container/heap"

	"spampsm/internal/ops5"
	"spampsm/internal/pmatch"
	"spampsm/internal/stats"
)

// MIPS is the simulated processor speed (NS32332 ≈ 1.5 MIPS).
const MIPS = 1.5

// InstrToSec converts simulated instructions to simulated seconds.
func InstrToSec(instr float64) float64 { return instr / (MIPS * 1e6) }

// SecToInstr converts simulated seconds to instructions.
func SecToInstr(sec float64) float64 { return sec * MIPS * 1e6 }

// Overheads are the task-management costs of the SPAM/PSM runtime, in
// simulated instructions.
type Overheads struct {
	// QueuePerTask is charged to a task process for each task it fetches
	// from the shared queue (locking, dequeue, result hand-back). The
	// paper measured task management at under 0.1% of processing time.
	QueuePerTask float64
	// Fork is the one-time cost of forking one task process. The paper's
	// measurement interval begins after forking and initialization, so
	// the experiment harness leaves this at zero; it is modeled for
	// completeness.
	Fork float64
}

// DefaultOverheads reflects the paper's "less than 25 seconds over all
// tasks" task-management measurement: tens of milliseconds per task.
var DefaultOverheads = Overheads{QueuePerTask: 30000, Fork: 0}

// Task is one schedulable unit: a label, its cost log (instruction
// and memory records), and the decomposition subtree it belongs to
// (the focal-class group — used by the post-order traversal policy).
type Task struct {
	ID    string
	Log   *ops5.CostLog
	Group string
}

// Durations converts tasks to instruction durations under m dedicated
// match processes per task process.
func Durations(tasks []Task, m int, model pmatch.Model) []float64 {
	out := make([]float64, len(tasks))
	for i, t := range tasks {
		out[i] = model.TaskInstr(t.Log, m)
	}
	return out
}

// procHeap orders processors by next-free time.
type procEntry struct {
	free float64
	idx  int
}
type procHeap []procEntry

func (h procHeap) Len() int { return len(h) }
func (h procHeap) Less(i, j int) bool {
	if h[i].free != h[j].free {
		return h[i].free < h[j].free
	}
	return h[i].idx < h[j].idx
}
func (h procHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *procHeap) Push(x interface{}) { *h = append(*h, x.(procEntry)) }
func (h *procHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Schedule is the result of one simulated run.
type Schedule struct {
	Makespan float64   // instructions until the last task completes
	Busy     []float64 // per-processor busy instructions
	PerTask  []float64 // completion time of each task, in queue order
	// PeakMem is the high-water mark of the aggregate in-flight
	// modeled footprint (simulated bytes); ThrottleWaits counts the
	// dispatches the memory budget stalled. Both are zero for the
	// schedulers that do not model memory (Run, RunSynchronous).
	PeakMem       float64
	ThrottleWaits int
}

// Utilization returns mean processor utilization over the makespan.
func (s Schedule) Utilization() float64 {
	if s.Makespan <= 0 || len(s.Busy) == 0 {
		return 0
	}
	var b float64
	for _, x := range s.Busy {
		b += x
	}
	return b / (s.Makespan * float64(len(s.Busy)))
}

// Run simulates T task processes pulling tasks (with the given
// durations, in queue order) from a shared queue: whenever a processor
// becomes free it takes the next task, paying the queue overhead.
// This is exactly the SPAM/PSM execution model.
func Run(durations []float64, taskProcs int, ov Overheads) Schedule {
	if taskProcs < 1 {
		taskProcs = 1
	}
	h := make(procHeap, taskProcs)
	busy := make([]float64, taskProcs)
	for i := range h {
		h[i] = procEntry{free: ov.Fork, idx: i}
	}
	heap.Init(&h)
	per := make([]float64, len(durations))
	var makespan float64
	for i, d := range durations {
		p := heap.Pop(&h).(procEntry)
		cost := d + ov.QueuePerTask
		p.free += cost
		busy[p.idx] += cost
		per[i] = p.free
		if p.free > makespan {
			makespan = p.free
		}
		heap.Push(&h, p)
	}
	return Schedule{Makespan: makespan, Busy: busy, PerTask: per}
}

// RunSynchronous models a synchronous parallel rule-firing system (the
// synchronous column of the paper's Table 4): the processes each take
// one task, then synchronize at a barrier before the next wave may
// begin. Under task-duration variance every wave lasts as long as its
// slowest member — the reason (Section 3.2, citing Mohan) SPAM/PSM
// fires asynchronously.
func RunSynchronous(durations []float64, taskProcs int, ov Overheads) Schedule {
	if taskProcs < 1 {
		taskProcs = 1
	}
	busy := make([]float64, taskProcs)
	per := make([]float64, len(durations))
	now := ov.Fork
	for start := 0; start < len(durations); start += taskProcs {
		end := start + taskProcs
		if end > len(durations) {
			end = len(durations)
		}
		var wave float64
		for i := start; i < end; i++ {
			cost := durations[i] + ov.QueuePerTask
			busy[(i-start)%taskProcs] += cost
			if cost > wave {
				wave = cost
			}
		}
		now += wave
		for i := start; i < end; i++ {
			per[i] = now
		}
	}
	return Schedule{Makespan: now, Busy: busy, PerTask: per}
}

// Config selects one point of the combined parallelism grid.
type Config struct {
	TaskProcs  int
	MatchProcs int // dedicated match processes per task process
}

// Processors returns the number of processors the configuration
// occupies: T task processes plus T*M match processes. (The control
// process and the OS processor are accounted separately, as in the
// paper's 16-processor budget.)
func (c Config) Processors() int { return c.TaskProcs + c.TaskProcs*c.MatchProcs }

// Experiment bundles a task set with the simulation models.
type Experiment struct {
	Tasks     []Task
	Model     pmatch.Model
	Overheads Overheads
}

// NewExperiment builds an experiment with default models.
func NewExperiment(tasks []Task) *Experiment {
	return &Experiment{Tasks: tasks, Model: pmatch.DefaultModel, Overheads: DefaultOverheads}
}

// BaselineInstr returns the baseline duration: one task process, no
// dedicated match processes.
func (e *Experiment) BaselineInstr() float64 {
	return e.RunConfig(Config{TaskProcs: 1}).Makespan
}

// RunConfig simulates one configuration.
func (e *Experiment) RunConfig(c Config) Schedule {
	durs := Durations(e.Tasks, c.MatchProcs, e.Model)
	return Run(durs, c.TaskProcs, e.Overheads)
}

// Speedup returns baseline/config time.
func (e *Experiment) Speedup(c Config) float64 {
	base := e.BaselineInstr()
	t := e.RunConfig(c).Makespan
	if t <= 0 {
		return 0
	}
	return base / t
}

// TLPSeries produces the task-level-parallelism speedup curve for
// 1..maxProcs task processes (no dedicated match processes) — the
// paper's Figure 6/8 axes.
func (e *Experiment) TLPSeries(name string, maxProcs int) stats.Series {
	base := e.BaselineInstr()
	s := stats.Series{Name: name}
	for t := 1; t <= maxProcs; t++ {
		sched := e.RunConfig(Config{TaskProcs: t})
		s.Add(float64(t), base/sched.Makespan)
	}
	return s
}

// MatchSeries produces the match-parallelism speedup curve for
// 0..maxProcs dedicated match processes with one task process — the
// paper's Figure 7/8 axes.
func (e *Experiment) MatchSeries(name string, maxProcs int) stats.Series {
	base := e.BaselineInstr()
	s := stats.Series{Name: name}
	for m := 0; m <= maxProcs; m++ {
		sched := e.RunConfig(Config{TaskProcs: 1, MatchProcs: m})
		s.Add(float64(m), base/sched.Makespan)
	}
	return s
}

// AmdahlLimit returns the match-parallelism asymptote of the whole task
// set: total time over non-match time.
func (e *Experiment) AmdahlLimit() float64 {
	var total, match float64
	for _, t := range e.Tasks {
		total += t.Log.TotalInstr()
		match += t.Log.MatchInstr()
	}
	rest := total - match
	if rest <= 0 {
		return 0
	}
	return total / rest
}

// MatchFraction returns the fraction of baseline time spent in match.
func (e *Experiment) MatchFraction() float64 {
	var total, match float64
	for _, t := range e.Tasks {
		total += t.Log.TotalInstr()
		match += t.Log.MatchInstr()
	}
	if total == 0 {
		return 0
	}
	return match / total
}

// PredictedCombined returns the multiplicative prediction for a
// combined configuration: speedup(T alone) × speedup(M alone), the
// quantity the paper validates in Table 9.
func (e *Experiment) PredictedCombined(c Config) float64 {
	st := e.Speedup(Config{TaskProcs: c.TaskProcs})
	sm := e.Speedup(Config{TaskProcs: 1, MatchProcs: c.MatchProcs})
	return st * sm
}
