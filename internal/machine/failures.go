package machine

import (
	"container/heap"
	"math"

	"spampsm/internal/faults"
	"spampsm/internal/stats"
)

// RunWithFailures simulates the shared-queue execution model of Run
// under processor loss: each failure kills one task process at a
// virtual time. A task in flight on a dying processor is charged as
// wasted work up to the moment of death and goes back to the head of
// the queue — exactly the recovery the SPAM/PSM design affords,
// because the task never synchronized with anything but the queue and
// can be rebuilt from scratch. Only the first failure per processor
// takes effect.
//
// The schedule is a pure function of its inputs, so fault experiments
// are reproducible. If every processor dies before the queue drains,
// the remaining tasks' completion times (and the makespan) are +Inf.
func RunWithFailures(durations []float64, taskProcs int, ov Overheads, failures []faults.ProcFailure) (Schedule, stats.Recovery) {
	if taskProcs < 1 {
		taskProcs = 1
	}
	dieAt := make(map[int]float64, len(failures))
	for _, f := range failures {
		if f.Proc < 0 || f.Proc >= taskProcs {
			continue
		}
		if at, ok := dieAt[f.Proc]; !ok || f.At < at {
			dieAt[f.Proc] = f.At
		}
	}
	h := make(procHeap, taskProcs)
	busy := make([]float64, taskProcs)
	for i := range h {
		h[i] = procEntry{free: ov.Fork, idx: i}
	}
	heap.Init(&h)
	per := make([]float64, len(durations))
	var makespan float64
	var rec stats.Recovery
	for i, d := range durations {
		assigned := false
		for h.Len() > 0 {
			p := heap.Pop(&h).(procEntry)
			cost := d + ov.QueuePerTask
			if at, dies := dieAt[p.idx]; dies {
				if p.free >= at {
					// Dead before it could fetch another task: retire it
					// and let the next-free processor take the task.
					rec.DeadProcs++
					continue
				}
				if p.free+cost > at {
					// Dies mid-task: the partial work is wasted and the
					// task is requeued on whichever processor frees next.
					rec.WastedInstr += at - p.free
					rec.Requeued++
					rec.Retries++
					busy[p.idx] += at - p.free
					rec.DeadProcs++
					continue
				}
			}
			p.free += cost
			busy[p.idx] += cost
			per[i] = p.free
			if p.free > makespan {
				makespan = p.free
			}
			heap.Push(&h, p)
			assigned = true
			break
		}
		if !assigned {
			// Every processor died; the rest of the queue never runs.
			for j := i; j < len(per); j++ {
				per[j] = math.Inf(1)
			}
			makespan = math.Inf(1)
			break
		}
	}
	rec.Attempts = rec.Requeued + len(durations)
	return Schedule{Makespan: makespan, Busy: busy, PerTask: per}, rec
}

// SpeedupWithFailures returns baseline time over the degraded
// configuration's makespan, plus the recovery accounting (0 speedup if
// the cluster died entirely).
func (e *Experiment) SpeedupWithFailures(c Config, failures []faults.ProcFailure) (float64, stats.Recovery) {
	base := e.BaselineInstr()
	durs := Durations(e.Tasks, c.MatchProcs, e.Model)
	sched, rec := RunWithFailures(durs, c.TaskProcs, e.Overheads, failures)
	if sched.Makespan <= 0 || math.IsInf(sched.Makespan, 1) {
		return 0, rec
	}
	return base / sched.Makespan, rec
}
