package machine

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randSpecs builds a deterministic pseudo-random task set with
// durations, footprints and a handful of groups.
func randSpecs(rng *rand.Rand, n int) []TaskSpec {
	groups := []string{"b", "rd", "rs", "f", "pl"}
	specs := make([]TaskSpec, n)
	for i := range specs {
		specs[i] = TaskSpec{
			Dur:   float64(rng.Intn(500)) * 1e4,
			Mem:   float64(1+rng.Intn(64)) * 1024,
			Group: groups[rng.Intn(len(groups))],
		}
	}
	return specs
}

// TestDifferentialFIFOSpecsMatchRun is the scheduling oracle's anchor:
// under the FIFO policy with no budget, RunSpecs must reproduce Run
// byte-for-byte — same float arithmetic, same Makespan, Busy and
// PerTask — so every other policy differs only by its permutation.
func TestDifferentialFIFOSpecsMatchRun(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ov := Overheads{Fork: 5e4, QueuePerTask: 2e4}
	for _, n := range []int{1, 2, 17, 100} {
		specs := randSpecs(rng, n)
		durs := make([]float64, n)
		for i, s := range specs {
			durs[i] = s.Dur
		}
		for _, p := range []int{1, 3, 7, 16, 64} {
			want := Run(durs, p, ov)
			got := RunSpecs(specs, Order(specs, PolicyFIFO), p, ov, 0)
			if got.Makespan != want.Makespan {
				t.Errorf("n=%d p=%d: makespan %v, Run gives %v", n, p, got.Makespan, want.Makespan)
			}
			if !reflect.DeepEqual(got.Busy, want.Busy) || !reflect.DeepEqual(got.PerTask, want.PerTask) {
				t.Errorf("n=%d p=%d: Busy/PerTask diverge from Run", n, p)
			}
		}
	}
}

func TestSchedZeroTasks(t *testing.T) {
	ov := Overheads{Fork: 5e4, QueuePerTask: 2e4}
	for _, pol := range Policies() {
		s := RunPolicy(nil, 4, ov, pol, 1024)
		if s.Makespan != 0 || s.PeakMem != 0 || s.ThrottleWaits != 0 || len(s.PerTask) != 0 {
			t.Errorf("%v: zero tasks must yield an empty schedule, got %+v", pol, s)
		}
	}
}

func TestSchedZeroDurationTasks(t *testing.T) {
	ov := Overheads{Fork: 1e4, QueuePerTask: 3e4}
	specs := make([]TaskSpec, 10)
	for i := range specs {
		specs[i] = TaskSpec{Mem: 512}
	}
	for _, pol := range Policies() {
		s := RunPolicy(specs, 4, ov, pol, 0)
		var busy float64
		for _, b := range s.Busy {
			busy += b
		}
		if want := float64(len(specs)) * ov.QueuePerTask; busy != want {
			t.Errorf("%v: busy %v, want queue overhead only %v", pol, busy, want)
		}
		for i, end := range s.PerTask {
			if end <= 0 {
				t.Fatalf("%v: zero-duration task %d never completed", pol, i)
			}
		}
	}
}

// TestSchedTieBreakDeterminism: with every duration, footprint and
// group equal, each policy must fall back to the original queue index,
// and repeated calls must agree.
func TestSchedTieBreakDeterminism(t *testing.T) {
	specs := make([]TaskSpec, 20)
	for i := range specs {
		specs[i] = TaskSpec{Dur: 1e5, Mem: 2048, Group: "g"}
	}
	for _, pol := range Policies() {
		order := Order(specs, pol)
		for i, ti := range order {
			if ti != i {
				t.Errorf("%v: tied tasks reordered: order[%d] = %d", pol, i, ti)
			}
		}
		if again := Order(specs, pol); !reflect.DeepEqual(order, again) {
			t.Errorf("%v: order not deterministic across calls", pol)
		}
	}
}

// TestQuickEveryPolicyPermutation: every policy's order executes the
// same task multiset — a permutation of 0..n-1, each index exactly
// once — and its schedule conserves the total work.
func TestQuickEveryPolicyPermutation(t *testing.T) {
	ov := Overheads{Fork: 5e4, QueuePerTask: 2e4}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		specs := randSpecs(rng, int(n%50)+1)
		var want float64
		for _, s := range specs {
			want += s.Dur + ov.QueuePerTask
		}
		for _, pol := range Policies() {
			order := Order(specs, pol)
			seen := make([]bool, len(specs))
			for _, ti := range order {
				if ti < 0 || ti >= len(specs) || seen[ti] {
					return false
				}
				seen[ti] = true
			}
			if len(order) != len(specs) {
				return false
			}
			sched := RunSpecs(specs, order, 6, ov, 0)
			var busy float64
			for _, b := range sched.Busy {
				busy += b
			}
			if busy != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSchedBudgetRespected(t *testing.T) {
	ov := Overheads{QueuePerTask: 1e4}
	specs := make([]TaskSpec, 24)
	for i := range specs {
		specs[i] = TaskSpec{Dur: 1e5, Mem: 100}
	}
	const budget = 250 // room for two tasks in flight, not three
	unbounded := RunPolicy(specs, 8, ov, PolicyFIFO, 0)
	bounded := RunPolicy(specs, 8, ov, PolicyFIFO, budget)
	if unbounded.PeakMem <= budget {
		t.Fatalf("unbounded peak %v under budget: test is vacuous", unbounded.PeakMem)
	}
	if bounded.PeakMem > budget {
		t.Errorf("bounded peak %v exceeds budget %v", bounded.PeakMem, budget)
	}
	if bounded.ThrottleWaits == 0 {
		t.Error("budget bound but no throttle waits recorded")
	}
	if bounded.Makespan < unbounded.Makespan {
		t.Errorf("throttled makespan %v beat unbounded %v", bounded.Makespan, unbounded.Makespan)
	}
}

// TestSchedOversizedTaskNoDeadlock: a task larger than the whole
// budget must drain the in-flight set and run alone, never stall the
// schedule, and surface its overrun in PeakMem.
func TestSchedOversizedTaskNoDeadlock(t *testing.T) {
	ov := Overheads{QueuePerTask: 1e4}
	specs := []TaskSpec{
		{Dur: 1e5, Mem: 100}, {Dur: 1e5, Mem: 100},
		{Dur: 1e5, Mem: 1000}, // over the whole budget
		{Dur: 1e5, Mem: 100}, {Dur: 1e5, Mem: 100},
	}
	sched := RunPolicy(specs, 4, ov, PolicyFIFO, 300)
	for i, end := range sched.PerTask {
		if end <= 0 {
			t.Fatalf("task %d never completed", i)
		}
	}
	if sched.PeakMem < 1000 {
		t.Errorf("oversized task's overrun invisible: peak %v", sched.PeakMem)
	}
}

// TestDifferentialPoliciesWorkConserved: the policies trade makespan
// and peak memory, never the amount of work.
func TestDifferentialPoliciesWorkConserved(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ov := Overheads{Fork: 5e4, QueuePerTask: 2e4}
	specs := randSpecs(rng, 60)
	var want float64
	for _, s := range specs {
		want += s.Dur + ov.QueuePerTask
	}
	for _, budget := range []float64{0, 16 * 1024, 48 * 1024} {
		for _, pol := range Policies() {
			sched := RunPolicy(specs, 8, ov, pol, budget)
			var busy float64
			for _, b := range sched.Busy {
				busy += b
			}
			if busy != want {
				t.Errorf("%v/B=%v: busy %v, want %v", pol, budget, busy, want)
			}
		}
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, pol := range Policies() {
		got, err := ParsePolicy(pol.String())
		if err != nil || got != pol {
			t.Errorf("ParsePolicy(%q) = %v, %v", pol.String(), got, err)
		}
	}
	if _, err := ParsePolicy("lifo"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
}

// BenchmarkSchedulerPolicies is the bench-quick scheduler
// microbenchmark: ordering and simulating a 2000-task queue under
// every policy, bounded and unbounded.
func BenchmarkSchedulerPolicies(b *testing.B) {
	rng := rand.New(rand.NewSource(1990))
	specs := randSpecs(rng, 2000)
	ov := Overheads{Fork: 5e4, QueuePerTask: 2e4}
	for _, pol := range Policies() {
		for _, budget := range []float64{0, 128 * 1024} {
			name := pol.String()
			if budget > 0 {
				name += "-bounded"
			}
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					RunPolicy(specs, 32, ov, pol, budget)
				}
			})
		}
	}
}
