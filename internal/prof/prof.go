// Package prof wires the standard pprof profilers into command-line
// tools: perf PRs should measure, not guess.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling and/or arms a heap profile according to
// the (possibly empty) file paths, returning a stop function to run
// before exit. The stop function finishes the CPU profile and writes
// the heap profile; it is safe to call when both paths are empty.
func Start(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
		cpuFile = f
	}
	stop := func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: create mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // get up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: write mem profile: %w", err)
			}
		}
		return nil
	}
	return stop, nil
}
