package matchbench

import (
	"fmt"
	"strings"
	"testing"

	"spampsm/internal/ops5"
	"spampsm/internal/pmatch"
	"spampsm/internal/rete"
)

func TestSourcesParse(t *testing.T) {
	for _, s := range []Spec{Rubik, Weaver, Tourney} {
		src := Source(s)
		if _, err := ops5.Parse(src); err != nil {
			t.Errorf("%s source: %v", s.Name, err)
		}
		if !strings.Contains(src, "drive") {
			t.Errorf("%s: missing driver production", s.Name)
		}
		// One watcher production per spec watcher.
		if got := strings.Count(src, "(p watch-"); got != s.Watchers {
			t.Errorf("%s: %d watcher productions, want %d", s.Name, got, s.Watchers)
		}
	}
}

func TestRunsAreMatchIntensive(t *testing.T) {
	for _, s := range []Spec{Rubik, Weaver, Tourney} {
		log, st, err := Run(s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if st.Firings != s.Cycles {
			t.Errorf("%s: fired %d, want %d (only the driver fires)", s.Name, st.Firings, s.Cycles)
		}
		if f := st.MatchFraction(); f < 0.9 {
			t.Errorf("%s: match fraction %.2f, want > 0.9 (match-intensive)", s.Name, f)
		}
		if len(log.Cycles) != s.Cycles {
			t.Errorf("%s: %d logged cycles", s.Name, len(log.Cycles))
		}
	}
}

func TestFigure3Shapes(t *testing.T) {
	speedAt := func(s Spec, m int) float64 {
		log, _, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		return pmatch.DefaultModel.Speedup(log, m)
	}
	rub := speedAt(Rubik, 13)
	wea := speedAt(Weaver, 13)
	tou := speedAt(Tourney, 13)
	// The figure's qualitative content: Rubik >= Weaver >> Tourney,
	// Rubik and Weaver "good", Tourney "quite low".
	if !(rub >= wea && wea > tou) {
		t.Errorf("ordering wrong: rubik %.1f, weaver %.1f, tourney %.1f", rub, wea, tou)
	}
	if rub < 9 {
		t.Errorf("rubik speedup %.1f, want good (>= 9)", rub)
	}
	if wea < 7 {
		t.Errorf("weaver speedup %.1f, want good (>= 7)", wea)
	}
	if tou > 6 {
		t.Errorf("tourney speedup %.1f, want quite low (<= 6)", tou)
	}
}

func TestTourneySaturates(t *testing.T) {
	log, _, err := Run(Tourney)
	if err != nil {
		t.Fatal(err)
	}
	s6 := pmatch.DefaultModel.Speedup(log, 6)
	s13 := pmatch.DefaultModel.Speedup(log, 13)
	if s13 > s6*1.25 {
		t.Errorf("tourney should saturate early: s6=%.2f s13=%.2f", s6, s13)
	}
}

func TestSpeedupSeries(t *testing.T) {
	log, _, err := Run(Weaver)
	if err != nil {
		t.Fatal(err)
	}
	ser := SpeedupSeries("weaver", log, 5, pmatch.DefaultModel)
	if len(ser.Points) != 5 {
		t.Fatalf("series points = %d", len(ser.Points))
	}
	y1, _ := ser.YAt(1)
	if y1 < 0.9 || y1 > 1.1 {
		t.Errorf("speedup at 1 process = %v, want ~1", y1)
	}
	for i := 1; i < len(ser.Points); i++ {
		if ser.Points[i].Y < ser.Points[i-1].Y-0.05 {
			t.Errorf("series should be nondecreasing early: %+v", ser.Points)
		}
	}
}

// renderForest serializes an activation forest (labels, costs, tree
// shape) so two captures can be compared exactly.
func renderForest(roots []*rete.Activation, sb *strings.Builder) {
	for _, a := range roots {
		fmt.Fprintf(sb, "%s(%g)", a.Label, a.Cost)
		if len(a.Children) > 0 {
			sb.WriteString("[")
			renderForest(a.Children, sb)
			sb.WriteString("]")
		}
		sb.WriteString(";")
	}
}

func renderLog(l *ops5.CostLog) string {
	var sb strings.Builder
	sb.WriteString("init:")
	renderForest(l.InitRoots, &sb)
	for i, c := range l.Cycles {
		fmt.Fprintf(&sb, "\ncycle%d(%g,%g,%g):", i, c.Resolve, c.Act, c.Match)
		renderForest(c.MatchRoots, &sb)
	}
	return sb.String()
}

func TestDeterministicRuns(t *testing.T) {
	l1, s1, err := Run(Tourney)
	if err != nil {
		t.Fatal(err)
	}
	l2, s2, err := Run(Tourney)
	if err != nil {
		t.Fatal(err)
	}
	if s1.TotalInstr() != s2.TotalInstr() || l1.TotalInstr() != l2.TotalInstr() {
		t.Error("runs must be deterministic")
	}
	// Strict reproducibility: the full captured activation forests —
	// the schedulable workload of the match-parallelism studies — must
	// be identical across runs, not just their totals.
	if renderLog(l1) != renderLog(l2) {
		t.Error("captured activation forests differ across identical runs")
	}
}

// TestIndexedMatchesNaiveForests runs each benchmark spec under the
// indexed and naive matchers and requires identical stats and captured
// forests: indexing must not change the simulated workload the
// parallel-match scheduler sees.
func TestIndexedMatchesNaiveForests(t *testing.T) {
	for _, s := range []Spec{Rubik, Weaver, Tourney} {
		li, si, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		ln, sn, err := Run(s, ops5.WithNaiveMatch())
		if err != nil {
			t.Fatal(err)
		}
		if si != sn {
			t.Errorf("%s: stats differ: indexed %+v naive %+v", s.Name, si, sn)
		}
		if renderLog(li) != renderLog(ln) {
			t.Errorf("%s: activation forests differ between indexed and naive matchers", s.Name)
		}
	}
}
