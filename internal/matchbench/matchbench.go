// Package matchbench reproduces the context of the paper's Figure 3:
// ParaOPS5 match-parallelism speedups on three match-intensive OPS5
// systems — Rubik, Weaver and Tourney. The original programs are not
// publicly available; these synthetic stand-ins are built to have the
// same *structural* match profiles, which is what determines the
// curves:
//
//   - Rubik: every cycle's WM change affects many productions, each
//     with real join work → a wide per-cycle activation forest → good
//     match speedup.
//   - Weaver: a moderate number of affected productions → moderate
//     speedup.
//   - Tourney: each change affects only a few productions whose joins
//     chain serially → almost no exploitable match parallelism, the
//     "quite low" curve of the figure.
//
// All three are match-dominated (> 90% match), like the originals, so
// Amdahl is not the binding constraint — per-cycle match width is.
package matchbench

import (
	"fmt"
	"strings"

	"spampsm/internal/ops5"
	"spampsm/internal/pmatch"
	"spampsm/internal/stats"
	"spampsm/internal/symtab"
)

// Spec defines one synthetic match-intensive system.
type Spec struct {
	Name     string
	Watchers int // productions affected by each cycle's WM change
	Items    int // item WMEs in working memory (8 groups)
	Depth    int // extra chained CEs per watcher (serializes the match)
	Chain    bool
	Cycles   int // driver firings to run
}

// The three systems of Figure 3.
var (
	// Rubik: wide, shallow match — many independent activations/cycle.
	Rubik = Spec{Name: "rubik", Watchers: 48, Items: 90, Depth: 0, Cycles: 120}
	// Weaver: moderately wide.
	Weaver = Spec{Name: "weaver", Watchers: 10, Items: 80, Depth: 0, Cycles: 120}
	// Tourney: narrow and deep — each watcher walks a linked chain of
	// items (selective ^nxt joins), so the per-cycle activation forest
	// has almost no width for the match processes to exploit.
	Tourney = Spec{Name: "tourney", Watchers: 2, Items: 16, Depth: 12, Chain: true, Cycles: 120}
)

// Source generates the OPS5 program for a spec: a driver production
// that advances a tick counter each cycle, and Watchers dormant
// productions that re-match against the item WMEs on every tick change
// (their final condition never holds, so only the driver fires — the
// match work is the workload, as in a match-intensive system).
func Source(s Spec) string {
	var b strings.Builder
	b.WriteString(`(literalize tick n limit)
(literalize item id group val nxt)
(literalize probe id)
`)
	b.WriteString(`
(p drive
   (tick ^n <n> ^limit > <n>)
  -->
   (modify 1 ^n (compute <n> + 1)))
`)
	for w := 0; w < s.Watchers; w++ {
		group := w % 8
		var ces []string
		ces = append(ces, fmt.Sprintf("   (tick ^n { <n> > %d })", w%5))
		if s.Chain {
			// Selective chain: each level joins exactly the next linked
			// item, so tokens form narrow sequential strands.
			ces = append(ces, fmt.Sprintf("   (item ^group %d ^val <> <n> ^id <i0> ^nxt <x1>)", group))
			for d := 1; d <= s.Depth; d++ {
				ces = append(ces, fmt.Sprintf("   (item ^id <x%d> ^nxt <x%d>)", d, d+1))
			}
		} else {
			ces = append(ces, fmt.Sprintf("   (item ^group %d ^val <> <n> ^id <i0>)", group))
			for d := 0; d < s.Depth; d++ {
				ces = append(ces, fmt.Sprintf("   (item ^group %d ^id { <i%d> > <i%d> })", group, d+1, d))
			}
		}
		// The probe class is never asserted: the production stays quiet
		// while its joins run on every tick.
		ces = append(ces, "   (probe ^id <n>)")
		fmt.Fprintf(&b, `
(p watch-%d
%s
  -->
   (make probe ^id 0))
`, w, strings.Join(ces, "\n"))
	}
	return b.String()
}

// Build compiles a spec into a loaded engine with capture enabled.
// Extra engine options (e.g. ops5.WithNaiveMatch for the unindexed
// reference matcher) are appended after capture.
func Build(s Spec, opts ...ops5.Option) (*ops5.Engine, error) {
	prog, err := ops5.Parse(Source(s))
	if err != nil {
		return nil, fmt.Errorf("matchbench %s: %w", s.Name, err)
	}
	e, err := ops5.NewEngine(prog, append([]ops5.Option{ops5.WithCapture()}, opts...)...)
	if err != nil {
		return nil, err
	}
	// Items are linked within their group: nxt points to the next item
	// of the same group (wrapping), which the Chain specs walk.
	groupItems := map[int][]int{}
	for i := 0; i < s.Items; i++ {
		g := i % 8
		groupItems[g] = append(groupItems[g], i)
	}
	nxt := map[int]int{}
	for _, ids := range groupItems {
		for k, id := range ids {
			nxt[id] = ids[(k+1)%len(ids)]
		}
	}
	for i := 0; i < s.Items; i++ {
		if _, err := e.Assert("item", map[string]symtab.Value{
			"id":    symtab.Int(int64(i)),
			"group": symtab.Int(int64(i % 8)),
			"val":   symtab.Int(int64(-1 - i)),
			"nxt":   symtab.Int(int64(nxt[i])),
		}); err != nil {
			return nil, err
		}
	}
	if _, err := e.Assert("tick", map[string]symtab.Value{
		"n": symtab.Int(0), "limit": symtab.Int(int64(s.Cycles)),
	}); err != nil {
		return nil, err
	}
	return e, nil
}

// Run executes a spec and returns its cost log and stats.
func Run(s Spec, opts ...ops5.Option) (*ops5.CostLog, ops5.RunStats, error) {
	e, err := Build(s, opts...)
	if err != nil {
		return nil, ops5.RunStats{}, err
	}
	if _, err := e.Run(0); err != nil {
		return nil, ops5.RunStats{}, err
	}
	return e.Log(), e.Stats(), nil
}

// SpeedupSeries computes the match-parallelism speedup curve of a run
// for 1..maxProcs match processes, as plotted in Figure 3.
func SpeedupSeries(name string, log *ops5.CostLog, maxProcs int, model pmatch.Model) stats.Series {
	s := stats.Series{Name: name}
	for m := 1; m <= maxProcs; m++ {
		s.Add(float64(m), model.Speedup(log, m))
	}
	return s
}
