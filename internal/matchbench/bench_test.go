package matchbench

import (
	"testing"

	"spampsm/internal/ops5"
)

// Engine-level benchmarks over the Figure 3 match-intensive systems,
// indexed vs naive. These run complete recognize-act cycles (parse,
// compile, assert, fire) with capture on, so they measure the matcher
// inside its real engine harness.

func benchSpec(b *testing.B, s Spec, opts ...ops5.Option) {
	b.ReportAllocs()
	b.ResetTimer()
	var tokens, sec float64
	for i := 0; i < b.N; i++ {
		e, err := Build(s, opts...)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(0); err != nil {
			b.Fatal(err)
		}
		c := e.MatchCounters()
		tokens += float64(c.TokensCreated + c.TokensDeleted)
	}
	b.StopTimer()
	if sec = b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(tokens/sec, "tokens/s")
	}
}

func BenchmarkRubik(b *testing.B) {
	b.Run("indexed", func(b *testing.B) { benchSpec(b, Rubik) })
	b.Run("naive", func(b *testing.B) { benchSpec(b, Rubik, ops5.WithNaiveMatch()) })
}

func BenchmarkWeaver(b *testing.B) {
	b.Run("indexed", func(b *testing.B) { benchSpec(b, Weaver) })
	b.Run("naive", func(b *testing.B) { benchSpec(b, Weaver, ops5.WithNaiveMatch()) })
}

func BenchmarkTourney(b *testing.B) {
	b.Run("indexed", func(b *testing.B) { benchSpec(b, Tourney) })
	b.Run("naive", func(b *testing.B) { benchSpec(b, Tourney, ops5.WithNaiveMatch()) })
}
