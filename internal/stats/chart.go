package stats

import (
	"fmt"
	"math"
	"strings"
)

// RenderChart draws series as an ASCII line chart, the terminal
// rendition of the paper's speedup figures. The X axis is the union of
// the series' X values; Y starts at zero. Each series is plotted with
// its own marker; coinciding points show the later series' marker.
func RenderChart(title string, xLabel, yLabel string, height int, series ...Series) string {
	if height < 4 {
		height = 12
	}
	markers := []byte{'*', 'o', '+', 'x', '#', '@'}

	// Collect sorted X values and the Y range.
	xset := map[float64]bool{}
	maxY := 0.0
	for _, s := range series {
		for _, p := range s.Points {
			xset[p.X] = true
			if p.Y > maxY {
				maxY = p.Y
			}
		}
	}
	if len(xset) == 0 || maxY <= 0 {
		return title + "\n(no data)\n"
	}
	xs := make([]float64, 0, len(xset))
	for x := range xset {
		xs = append(xs, x)
	}
	sortFloats(xs)

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}

	// Grid: one column per X value (2 chars wide), height rows.
	cols := len(xs)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols*2))
	}
	rowOf := func(y float64) int {
		r := height - 1 - int(math.Round(y/maxY*float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	colOf := map[float64]int{}
	for i, x := range xs {
		colOf[x] = i * 2
	}
	for si, s := range series {
		mk := markers[si%len(markers)]
		for _, p := range s.Points {
			grid[rowOf(p.Y)][colOf[p.X]] = mk
		}
	}

	// Y-axis labels on the left.
	for r := 0; r < height; r++ {
		yv := (float64(height-1-r) / float64(height-1)) * maxY
		fmt.Fprintf(&b, "%7.2f |%s\n", yv, string(grid[r]))
	}
	b.WriteString("        +" + strings.Repeat("-", cols*2) + "\n")
	// X-axis labels: print every k-th to stay readable.
	lbl := []byte(strings.Repeat(" ", cols*2+2))
	step := 1
	if cols > 12 {
		step = 2
	}
	for i := 0; i < cols; i += step {
		s := FormatFloat(xs[i])
		for j := 0; j < len(s) && i*2+j < len(lbl); j++ {
			lbl[i*2+j] = s[j]
		}
	}
	b.WriteString("         " + strings.TrimRight(string(lbl), " ") + "\n")
	fmt.Fprintf(&b, "         %s (y: %s)   legend:", xLabel, yLabel)
	for si, s := range series {
		fmt.Fprintf(&b, " %c=%s", markers[si%len(markers)], s.Name)
	}
	b.WriteString("\n")
	return b.String()
}

// sortFloats is a tiny insertion sort (n is small: axis points).
func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
