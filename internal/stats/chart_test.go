package stats

import (
	"strings"
	"testing"
)

func demoSeries() (Series, Series) {
	a := Series{Name: "L3"}
	b := Series{Name: "L2"}
	for p := 1; p <= 14; p++ {
		a.Add(float64(p), float64(p)*0.85)
		b.Add(float64(p), float64(p)*0.88)
	}
	return a, b
}

func TestRenderChartBasics(t *testing.T) {
	a, b := demoSeries()
	out := RenderChart("Figure 6", "task procs", "speedup", 12, a, b)
	for _, want := range []string{"Figure 6", "*=L3", "o=L2", "task procs", "|"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + 12 rows + axis + labels + legend.
	if len(lines) < 15 {
		t.Errorf("chart too short: %d lines", len(lines))
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("markers missing")
	}
}

func TestRenderChartMonotoneShape(t *testing.T) {
	a, _ := demoSeries()
	out := RenderChart("", "x", "y", 10, a)
	// A rising series: the first data row (highest y) must contain a
	// marker near the right edge, the last data row near the left.
	lines := strings.Split(out, "\n")
	var dataRows []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			dataRows = append(dataRows, l[strings.Index(l, "|")+1:])
		}
	}
	if len(dataRows) < 2 {
		t.Fatalf("no data rows:\n%s", out)
	}
	top, bottom := dataRows[0], dataRows[len(dataRows)-1]
	if strings.IndexByte(top, '*') < strings.IndexByte(bottom, '*') {
		t.Errorf("rising series should put high values to the right:\ntop %q\nbottom %q", top, bottom)
	}
}

func TestRenderChartEmpty(t *testing.T) {
	out := RenderChart("t", "x", "y", 10)
	if !strings.Contains(out, "no data") {
		t.Errorf("empty chart = %q", out)
	}
	var empty Series
	out = RenderChart("t", "x", "y", 10, empty)
	if !strings.Contains(out, "no data") {
		t.Errorf("empty-series chart = %q", out)
	}
}

func TestRenderChartHeightClamp(t *testing.T) {
	a, _ := demoSeries()
	out := RenderChart("t", "x", "y", 1, a) // clamped to a sane height
	if strings.Count(out, "|") < 4 {
		t.Errorf("height clamp failed:\n%s", out)
	}
}
