package stats

// Recovery is the shared recovery-overhead accounting used by the
// fault experiments: the real runtime's RunReport and the simulators'
// processor-failure and message-loss runs all reduce to these columns,
// so tables can compare recovery cost across execution substrates.
type Recovery struct {
	Attempts    int     // total task attempts (>= tasks)
	Retries     int     // attempts beyond the first per task
	Recovered   int     // tasks that failed then succeeded on retry
	Quarantined int     // tasks that exhausted their attempts
	Requeued    int     // simulator tasks requeued after processor death
	DeadProcs   int     // simulated processors lost mid-run
	Retransmits int     // lost messages / fault-service rounds resent
	WastedInstr float64 // simulated instructions of lost work
}

// Add accumulates another recovery record.
func (r *Recovery) Add(o Recovery) {
	r.Attempts += o.Attempts
	r.Retries += o.Retries
	r.Recovered += o.Recovered
	r.Quarantined += o.Quarantined
	r.Requeued += o.Requeued
	r.DeadProcs += o.DeadProcs
	r.Retransmits += o.Retransmits
	r.WastedInstr += o.WastedInstr
}

// OverheadPercent returns the wasted work as a percentage of the given
// useful work (0 when useful is not positive).
func (r Recovery) OverheadPercent(usefulInstr float64) float64 {
	if usefulInstr <= 0 {
		return 0
	}
	return 100 * r.WastedInstr / usefulInstr
}

// RecoveryHeaders returns the standard recovery-overhead column
// headers, in the order Recovery.Row emits them.
func RecoveryHeaders() []string {
	return []string{"Retries", "Quarantined", "Requeued", "Dead procs", "Retransmits", "Wasted (sec)"}
}

// Row renders the standard recovery-overhead columns. instrPerSec
// converts wasted instructions to seconds (pass the simulator's
// instruction rate, e.g. machine.MIPS*1e6).
func (r Recovery) Row(instrPerSec float64) []interface{} {
	wasted := r.WastedInstr
	if instrPerSec > 0 {
		wasted /= instrPerSec
	}
	return []interface{}{r.Retries, r.Quarantined, r.Requeued, r.DeadProcs, r.Retransmits, wasted}
}
