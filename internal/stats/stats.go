// Package stats provides the descriptive statistics and table/series
// rendering shared by the SPAM/PSM measurement harness: means, standard
// deviations, the coefficient of variance the paper uses to pick a
// decomposition level, and speedup series for the figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Sum    float64
	Mean   float64
	Stddev float64 // population standard deviation, as in the paper's tables
	CoV    float64 // coefficient of variance = stddev / mean
	Min    float64
	Max    float64
}

// Summarize computes descriptive statistics of xs. An empty sample
// yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Stddev = math.Sqrt(ss / float64(s.N))
	if s.Mean != 0 {
		s.CoV = s.Stddev / s.Mean
	}
	return s
}

// Percentile returns the p-th percentile (0..100) of xs using nearest-rank
// on a sorted copy. It returns 0 for an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(cp))))
	if rank < 1 {
		rank = 1
	}
	return cp[rank-1]
}

// Point is one (x, y) sample of a measured series.
type Point struct {
	X float64
	Y float64
}

// Series is a named sequence of points, e.g. one speedup curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// YAt returns the Y value at the first point with the given X, and
// whether such a point exists.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// MaxY returns the largest Y in the series (0 if empty).
func (s *Series) MaxY() float64 {
	var m float64
	for _, p := range s.Points {
		if p.Y > m {
			m = p.Y
		}
	}
	return m
}

// Speedups converts a base duration and per-X durations into a speedup
// series: Y = base / duration.
func Speedups(name string, base float64, xs []float64, durations []float64) Series {
	s := Series{Name: name}
	for i, x := range xs {
		if durations[i] > 0 {
			s.Add(x, base/durations[i])
		}
	}
	return s
}

// Table is a fixed-width text table in the style of the paper's tables.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells, formatting each with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: integers without a point,
// otherwise with enough (2-3) significant decimals for the tables.
func FormatFloat(v float64) string {
	av := math.Abs(v)
	switch {
	case v == math.Trunc(v) && av < 1e12:
		return fmt.Sprintf("%.0f", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	case av >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// FormatBytes renders a modeled byte count compactly (KB/MB/GB are
// powers of 1024). The schedulers' memory figures are model units, not
// heap measurements, but reading them as sizes is what the unit is for.
func FormatBytes(v float64) string {
	av := math.Abs(v)
	switch {
	case av < 1024:
		return fmt.Sprintf("%.0f B", v)
	case av < 1024*1024:
		return fmt.Sprintf("%.1f KB", v/1024)
	case av < 1024*1024*1024:
		return fmt.Sprintf("%.1f MB", v/(1024*1024))
	default:
		return fmt.Sprintf("%.2f GB", v/(1024*1024*1024))
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// SeriesCSV renders series as CSV keyed by X: a header row of names,
// then one row per X value with empty cells for missing points.
func SeriesCSV(xLabel string, series ...Series) string {
	var b strings.Builder
	b.WriteString(xLabel)
	for _, s := range series {
		b.WriteString(",")
		b.WriteString(strings.ReplaceAll(s.Name, ",", ";"))
	}
	b.WriteByte('\n')
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	for _, x := range xs {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range series {
			b.WriteString(",")
			if y, ok := s.YAt(x); ok {
				fmt.Fprintf(&b, "%g", y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderSeries renders one or more series as aligned columns keyed by X,
// in the style of the paper's figure data.
func RenderSeries(title string, xLabel string, series ...Series) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	// Collect the union of X values in order of first appearance.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	fmt.Fprintf(&b, "%-12s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, "  %12s", s.Name)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%-12s", FormatFloat(x))
		for _, s := range series {
			if y, ok := s.YAt(x); ok {
				fmt.Fprintf(&b, "  %12s", FormatFloat(y))
			} else {
				fmt.Fprintf(&b, "  %12s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
