package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if !approx(s.Mean, 5, 1e-12) {
		t.Errorf("Mean = %v", s.Mean)
	}
	if !approx(s.Stddev, 2, 1e-12) {
		t.Errorf("Stddev = %v", s.Stddev)
	}
	if !approx(s.CoV, 0.4, 1e-12) {
		t.Errorf("CoV = %v", s.CoV)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 || s.CoV != 0 {
		t.Errorf("empty summary not zero: %+v", s)
	}
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.Stddev != 0 || s.CoV != 0 {
		t.Errorf("single summary wrong: %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(xs, 50); p != 5 {
		t.Errorf("P50 = %v", p)
	}
	if p := Percentile(xs, 100); p != 10 {
		t.Errorf("P100 = %v", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Errorf("P0 = %v", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Errorf("empty percentile = %v", p)
	}
	// Percentile must not reorder the caller's slice.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(1, 1.0)
	s.Add(4, 3.9)
	if y, ok := s.YAt(4); !ok || y != 3.9 {
		t.Errorf("YAt(4) = %v,%v", y, ok)
	}
	if _, ok := s.YAt(2); ok {
		t.Error("YAt(2) should be absent")
	}
	if s.MaxY() != 3.9 {
		t.Errorf("MaxY = %v", s.MaxY())
	}
}

func TestSpeedups(t *testing.T) {
	s := Speedups("tlp", 100, []float64{1, 2, 4}, []float64{100, 52, 27})
	if y, _ := s.YAt(1); !approx(y, 1, 1e-12) {
		t.Errorf("speedup at 1 = %v", y)
	}
	if y, _ := s.YAt(4); !approx(y, 100.0/27, 1e-12) {
		t.Errorf("speedup at 4 = %v", y)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "Table X", Headers: []string{"Dataset", "Tasks", "Avg"}}
	tb.AddRow("SF", 283, 5.07)
	tb.AddRow("DC", 151, 6.55)
	out := tb.String()
	for _, want := range []string{"Table X", "Dataset", "SF", "283", "5.07", "6.55"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderSeries(t *testing.T) {
	a := Series{Name: "SF"}
	a.Add(1, 1)
	a.Add(2, 1.9)
	b := Series{Name: "DC"}
	b.Add(2, 1.8)
	out := RenderSeries("Fig", "procs", a, b)
	for _, want := range []string{"Fig", "SF", "DC", "1.90", "1.80", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("series output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		12:     "12",
		0.357:  "0.357",
		5.07:   "5.07",
		1308.7: "1308.7",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestSeriesCSV(t *testing.T) {
	a := Series{Name: "SF"}
	a.Add(1, 1)
	a.Add(2, 1.9)
	b := Series{Name: "with,comma"}
	b.Add(2, 1.8)
	out := SeriesCSV("procs", a, b)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "procs,SF,with;comma" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1,1," {
		t.Errorf("row 1 = %q (missing cell must be empty)", lines[1])
	}
	if lines[2] != "2,1.9,1.8" {
		t.Errorf("row 2 = %q", lines[2])
	}
}

func TestQuickSummaryBounds(t *testing.T) {
	f := func(xs []float64) bool {
		// Guard against pathological infinities from quick's generator.
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsInf(x, 0) && !math.IsNaN(x) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		s := Summarize(clean)
		if s.N == 0 {
			return true
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.Stddev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickStddevScaleInvariance(t *testing.T) {
	f := func(seed uint8) bool {
		xs := make([]float64, 10)
		for i := range xs {
			xs[i] = float64((int(seed)+i*7)%23) + 1
		}
		s1 := Summarize(xs)
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = 3 * x
		}
		s2 := Summarize(scaled)
		// CoV is scale-free; stddev scales linearly.
		return approx(s2.CoV, s1.CoV, 1e-9) && approx(s2.Stddev, 3*s1.Stddev, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
